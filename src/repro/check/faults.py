"""Recovery-coverage sanitizer for the resilient protocols.

The contract of :func:`repro.faults.resilient._resilient_exchange` is
that every window a rank expects is accounted for *exactly once*: it
either arrived from an aggregator (original or adoptive) or it is left
to the degraded tail for the rank to self-serve with independent I/O.
A gap silently drops data; an overlap double-counts it — and for the
collective-computing path double-combining a partial result corrupts
the reduction without any crash to point at it.

:func:`check_recovery_coverage` asserts that partition.  The resilient
consumers call it under :func:`repro.check.flags.checks_enabled`, so —
like the other runtime sanitizers — it costs nothing in production runs
and guards every faulted scenario in the smoke battery and the tests.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..errors import FaultError

#: Same identity as :data:`repro.faults.recovery.WindowKey` (not
#: imported from there: this layer must stay import-light so the
#: resilient protocols can depend on it without a cycle).
WindowKey = Tuple[int, int]


def check_recovery_coverage(expected: Iterable[WindowKey],
                            served: Iterable[WindowKey],
                            self_served: Iterable[WindowKey],
                            where: str = "") -> None:
    """Assert the post-recovery window accounting for one rank.

    Parameters
    ----------
    expected:
        Window keys this rank needed (its membership under the plan).
    served:
        Keys whose payload arrived over the exchange (any round).
    self_served:
        Keys left to this rank's degraded/independent tail.

    Raises :class:`~repro.errors.FaultError` when the two served sets
    overlap (double-count), leave an expected key uncovered (data
    loss), or cover a key outside the expectation (phantom window).
    """
    expected_set = set(expected)
    served_set = set(served)
    self_set = set(self_served)
    label = f" in {where}" if where else ""
    overlap = served_set & self_set
    if overlap:
        raise FaultError(
            f"window(s) both received and self-served{label} — the "
            f"reduction would double-count them: {sorted(overlap)}")
    covered = served_set | self_set
    uncovered = expected_set - covered
    if uncovered:
        raise FaultError(
            f"recovery left expected window(s) uncovered{label}: "
            f"{sorted(uncovered)}")
    phantom = covered - expected_set
    if phantom:
        raise FaultError(
            f"recovery covered window(s) outside this rank's "
            f"expectation{label}: {sorted(phantom)}")
