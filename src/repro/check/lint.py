"""Determinism lint — a custom AST pass over the library source.

The simulator's contract (DESIGN.md §8) is that a run is a pure
function of the program: no wall-clock, no unseeded randomness, no
iteration order borrowed from hash-randomized containers or the file
system.  These properties are exactly the ones that are easy to break
silently while refactoring the aggregation/shuffle layers, so this
module enforces them statically:

``wallclock``
    No ``time.time``/``perf_counter``/``monotonic``/``datetime.now``
    (and friends) on event-ordering paths.
``unseeded-rng``
    No ``random`` module use and no ``numpy.random`` module-level RNG;
    ``default_rng(seed)`` with an explicit seed is allowed.
``set-iteration``
    No ``for``/comprehension iteration directly over a ``set`` literal
    or ``set()``/``frozenset()`` call — hash order is randomized across
    interpreter runs.  Wrap in ``sorted(...)``.
``listdir-order``
    No iteration over ``os.listdir``/``os.scandir``/``glob.glob``/
    ``Path.iterdir`` results without ``sorted(...)`` — directory order
    is file-system dependent.
``sched-iteration``
    No ``for``/comprehension iteration directly over
    ``.union(...)``/``.intersection(...)``/``.difference(...)``/
    ``.symmetric_difference(...)`` results — set algebra yields hash
    order, which silently feeds event scheduling.  Wrap in
    ``sorted(...)``.
``pool-global``
    (Pool packages only — :attr:`LintConfig.pool_packages`.)  No
    module-level mutable container assignments: each sweep worker
    forks/spawns with its *own copy*, so mutations made in a worker
    never reach the parent (or other workers) — state that looks
    shared silently is not.  Pass state through
    :class:`~repro.parallel.sweep.SweepPoint` kwargs and return values
    instead, or waive with a justifying comment.
``spawn-closure``
    No ``lambda`` or ``functools.partial`` arguments to
    ``SweepPoint.make``/``SweepPoint``/``run_sweep`` (any package):
    closures don't survive the spawn pickle boundary — targets must be
    importable ``module:attr`` strings and plain-data kwargs.
``mutable-default``
    No mutable default arguments (any package).
``bare-except``
    No ``except:`` clauses (any package) — they swallow
    ``KeyboardInterrupt`` and hide simulator bugs.
``module-docstring``
    Opt-in (``LintConfig(require_docstrings=True)`` / the CLI's
    ``--require-docstrings``): every module must open with a docstring.
    CI's API-reference job enables it so ``pdoc`` output never ships an
    undocumented module.

Rules are configurable per package (:class:`LintConfig`) and individual
lines may be waived with an inline ``# repro: allow[rule]`` (or
``allow[rule1,rule2]``) comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

#: Rules enforced only on event-ordering packages.
ORDERING_RULES = frozenset({
    "wallclock", "unseeded-rng", "set-iteration", "listdir-order",
    "sched-iteration",
})
#: Rules enforced everywhere.
UNIVERSAL_RULES = frozenset({"mutable-default", "bare-except",
                             "spawn-closure"})
#: Rules enforced only on packages whose code runs inside worker pools.
POOL_RULES = frozenset({"pool-global"})
#: Opt-in rules (off unless the config asks for them).
OPT_IN_RULES = frozenset({"module-docstring"})
#: Every rule id this lint knows.
ALL_RULES = ORDERING_RULES | UNIVERSAL_RULES | POOL_RULES | OPT_IN_RULES

#: One-line waiver syntax per rule, shown by ``--list-rules`` so the
#: escape hatch is discoverable next to the rule it waives.
WAIVER_SYNTAX = "# repro: allow[{rule}]"

#: ``time``/``datetime`` attributes that read the wall clock.
_WALLCLOCK_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    "now", "utcnow", "today",
})
_WALLCLOCK_MODULES = frozenset({"time", "datetime"})

#: Directory-order producers (attribute or bare-name call targets).
_LISTDIR_FUNCS = frozenset({"listdir", "scandir", "iterdir", "glob", "rglob"})

#: Set-algebra methods whose results iterate in hash order.
_SET_ALGEBRA = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

#: Mutable-container constructors for the ``pool-global`` rule.
_MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict",
})

_WAIVER_RE = re.compile(r"#\s*repro:\s*allow\[([a-z\-,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: [rule] message`` — the CLI output line."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Which rules apply where.

    ``ordered_packages`` are dotted package prefixes whose modules sit
    on event-ordering paths and therefore get :data:`ORDERING_RULES` on
    top of the universal ones.  An entry matches a module when it
    equals the module or is a dotted prefix of it.
    """

    ordered_packages: Tuple[str, ...] = (
        "repro.sim", "repro.mpi", "repro.io", "repro.pfs",
        "repro.core", "repro.cluster", "repro.dataspace",
        "repro.experiments", "repro.workloads", "repro.highlevel",
        "repro.faults", "repro.parallel", "repro.obs",
    )
    #: Packages whose module state is copied into pool workers (sweep
    #: engine plus the check battery it drives, plus the metrics
    #: registry they ship snapshots from) — get ``pool-global``.
    pool_packages: Tuple[str, ...] = ("repro.parallel", "repro.check",
                                      "repro.obs")
    universal_rules: FrozenSet[str] = UNIVERSAL_RULES
    ordering_rules: FrozenSet[str] = ORDERING_RULES
    pool_rules: FrozenSet[str] = POOL_RULES
    #: Enable the ``module-docstring`` rule (used by CI's API-reference
    #: job so every published module carries documentation).
    require_docstrings: bool = False

    @staticmethod
    def _matches(module: str, prefixes: Tuple[str, ...]) -> bool:
        return any(module == p or module.startswith(p + ".")
                   for p in prefixes)

    def rules_for(self, module: str) -> FrozenSet[str]:
        """The enabled rule set for one dotted module name."""
        rules = self.universal_rules
        if self.require_docstrings:
            rules = rules | OPT_IN_RULES
        if self._matches(module, self.ordered_packages):
            rules = rules | self.ordering_rules
        if self._matches(module, self.pool_packages):
            rules = rules | self.pool_rules
        return rules


DEFAULT_CONFIG = LintConfig()


def module_name_for(path: Path) -> str:
    """Dotted module name of a file, anchored at the ``repro`` package
    when present (``src/repro/io/twophase.py`` → ``repro.io.twophase``);
    files outside the package keep their stem (examples, scripts)."""
    parts = path.with_suffix("").parts
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(parts)


def _parse_waivers(source: str) -> Dict[int, Set[str]]:
    """Line number → rule ids waived on that line."""
    waivers: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _WAIVER_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            waivers[lineno] = rules
    return waivers


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, rules: FrozenSet[str]) -> None:
        self.path = path
        self.rules = rules
        self.findings: List[Finding] = []
        #: ids of Call nodes appearing directly inside ``sorted(...)``
        #: (sanctioned directory listings).
        self._sorted_args: Set[int] = set()

    # -- helpers ---------------------------------------------------------
    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.rules:
            self.findings.append(Finding(
                self.path, getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0), rule, message))

    @staticmethod
    def _dotted(node: ast.AST) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, else None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    # -- imports ---------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random":
                self._report(node, "unseeded-rng",
                             "import of the global 'random' module")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            self.generic_visit(node)
            return
        root = node.module.split(".")[0]
        if root == "random":
            self._report(node, "unseeded-rng",
                         "import from the global 'random' module")
        elif root in _WALLCLOCK_MODULES:
            for alias in node.names:
                if alias.name in _WALLCLOCK_ATTRS:
                    self._report(
                        node, "wallclock",
                        f"import of wall-clock '{node.module}.{alias.name}'")
        elif node.module.startswith("numpy.random"):
            for alias in node.names:
                if alias.name not in ("default_rng", "Generator",
                                      "SeedSequence"):
                    self._report(
                        node, "unseeded-rng",
                        f"import of 'numpy.random.{alias.name}' (use an "
                        f"explicitly seeded Generator)")
        elif node.module == "numpy" and any(a.name == "random"
                                            for a in node.names):
            self._report(node, "unseeded-rng",
                         "import of the numpy.random module (shared, "
                         "unseeded global state)")
        self.generic_visit(node)

    # -- attribute / call use --------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = self._dotted(node)
        if dotted is not None:
            head, _, _tail = dotted.partition(".")
            if head in _WALLCLOCK_MODULES and \
                    dotted.split(".")[-1] in _WALLCLOCK_ATTRS:
                self._report(node, "wallclock",
                             f"wall-clock read '{dotted}'")
            elif ".random." in f".{dotted}." and head in ("np", "numpy"):
                tail = dotted.split(".")[-1]
                if tail not in ("default_rng", "Generator", "SeedSequence"):
                    self._report(
                        node, "unseeded-rng",
                        f"module-level numpy RNG '{dotted}' (shared, "
                        f"unseeded state)")
            elif head == "random":
                self._report(node, "unseeded-rng",
                             f"global-RNG call '{dotted}'")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # Mark direct arguments of sorted(...) as order-sanctioned.
        if isinstance(func, ast.Name) and func.id == "sorted":
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    self._sorted_args.add(id(arg))
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name in _LISTDIR_FUNCS and id(node) not in self._sorted_args:
            self._report(
                node, "listdir-order",
                f"'{name}(...)' yields file-system order; wrap in sorted(...)")
        if name == "default_rng" and not node.args and not node.keywords:
            self._report(node, "unseeded-rng",
                         "default_rng() without an explicit seed")
        self._check_spawn_closure(node)
        self.generic_visit(node)

    def _check_spawn_closure(self, node: ast.Call) -> None:
        """``spawn-closure``: lambdas/partials handed to the sweep
        engine never survive the pool's pickle boundary."""
        dotted = self._dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        is_spawn_target = (
            parts[-1] in ("SweepPoint", "run_sweep")
            or parts[-2:] == ["SweepPoint", "make"])
        if not is_spawn_target:
            return
        display = ".".join(parts[-2:]) if parts[-2:] == \
            ["SweepPoint", "make"] else parts[-1]
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            if isinstance(value, ast.Lambda):
                self._report(
                    value, "spawn-closure",
                    f"lambda passed to {display}(...) cannot cross the "
                    f"worker-pool pickle boundary; use an importable "
                    f"'module:attr' target and plain-data kwargs")
            elif isinstance(value, ast.Call):
                inner = self._dotted(value.func)
                if inner in ("partial", "functools.partial"):
                    self._report(
                        value, "spawn-closure",
                        f"functools.partial passed to {display}(...) "
                        f"cannot cross the worker-pool pickle boundary; "
                        f"use an importable 'module:attr' target and "
                        f"plain-data kwargs")

    # -- iteration order --------------------------------------------------
    def _check_iter(self, iter_node: ast.AST) -> None:
        if isinstance(iter_node, ast.Set):
            self._report(iter_node, "set-iteration",
                         "iteration over a set literal (hash order); "
                         "wrap in sorted(...)")
        elif isinstance(iter_node, ast.Call) and \
                isinstance(iter_node.func, ast.Name) and \
                iter_node.func.id in ("set", "frozenset"):
            self._report(iter_node, "set-iteration",
                         f"iteration over {iter_node.func.id}(...) "
                         f"(hash order); wrap in sorted(...)")
        elif isinstance(iter_node, ast.Call) and \
                isinstance(iter_node.func, ast.Attribute) and \
                iter_node.func.attr in _SET_ALGEBRA:
            self._report(iter_node, "sched-iteration",
                         f"iteration over .{iter_node.func.attr}(...) "
                         f"(set algebra yields hash order, which can "
                         f"feed event scheduling); wrap in sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    # -- pool packages -----------------------------------------------------
    @staticmethod
    def _is_mutable_container(value: ast.AST) -> Optional[str]:
        """Short description of a mutable-container initializer, else
        None (only literals and well-known constructors; an arbitrary
        call could return anything)."""
        if isinstance(value, ast.List):
            return "list"
        if isinstance(value, ast.Dict):
            return "dict"
        if isinstance(value, ast.Set):
            return "set"
        if isinstance(value, ast.Call):
            dotted = _Visitor._dotted(value.func)
            if dotted is not None and dotted.split(".")[-1] in \
                    _MUTABLE_CTORS:
                return dotted.split(".")[-1]
        return None

    def visit_Module(self, node: ast.Module) -> None:
        # ``pool-global`` looks only at module-level statements:
        # function/class bodies re-execute per call, so their mutables
        # are not worker-duplicated state.
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                value, target = stmt.value, stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign):
                value, target = stmt.value, stmt.target
            else:
                continue
            if value is None:
                continue
            kind = self._is_mutable_container(value)
            if kind is None:
                continue
            name = target.id if isinstance(target, ast.Name) else "?"
            if name.startswith("__") and name.endswith("__"):
                continue  # __all__ and friends: assigned-once metadata
            self._report(
                stmt, "pool-global",
                f"module-level mutable {kind} {name!r}: sweep workers "
                f"fork/spawn with their own copy, so mutations never "
                f"reach the parent; pass state through SweepPoint "
                f"kwargs/returns, or waive with a justifying comment")
        self.generic_visit(node)

    # -- universal rules ---------------------------------------------------
    def _check_defaults(self, node) -> None:
        for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray"))
            if bad:
                self._report(default, "mutable-default",
                             f"mutable default argument in "
                             f"'{node.name}' (shared across calls)")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(node, "bare-except",
                         "bare 'except:' (catches KeyboardInterrupt and "
                         "masks simulator bugs); name the exception")
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>",
                module: Optional[str] = None,
                config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    """Lint one source string; returns findings after waiver filtering."""
    if module is None:
        module = module_name_for(Path(path))
    rules = config.rules_for(module)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, exc.offset or 0,
                        "syntax", f"cannot parse: {exc.msg}")]
    visitor = _Visitor(path, rules)
    visitor.visit(tree)
    if "module-docstring" in rules and ast.get_docstring(tree) is None:
        visitor.findings.insert(0, Finding(
            path, 1, 0, "module-docstring",
            f"module {module!r} has no docstring (the API reference "
            f"would publish it undocumented)"))
    waivers = _parse_waivers(source)
    if not waivers:
        return visitor.findings
    return [f for f in visitor.findings
            if f.rule not in waivers.get(f.line, ())]


def lint_file(path: Path, config: LintConfig = DEFAULT_CONFIG
              ) -> List[Finding]:
    """Lint one file."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), module_name_for(path),
                       config=config)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: Set[Path] = set()
    for p in paths:
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def lint_paths(paths: Sequence[Path],
               config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    """Lint every Python file under ``paths`` (deterministic order)."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, config=config))
    return findings
