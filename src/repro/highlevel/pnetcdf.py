"""PnetCDF-flavoured high-level API.

The paper's example code (Figures 5-6) is written against PnetCDF:
``ncmpi_get_vara_float_all`` for the traditional path and the proposed
``ncmpi_object_get_vara_float(io, op)`` for object I/O.  This module
provides the same surface on top of the library:

* :func:`create_dataset` — define-mode: lay out variables in a file on
  the machine's parallel file system (run once, before the MPI job).
* :class:`NCFile` / :class:`Variable` — per-rank access handles with
  ``get_vara_all`` (collective read), ``get_vara`` (independent read),
  ``put_vara_all`` (collective write) and ``object_get_vara``
  (collective computing).
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..core import CCStats, MapReduceOp, ObjectIO, object_get
from ..core.runtime import CCResult
from ..dataspace import DatasetSpec, Subarray
from ..errors import DataspaceError
from ..io import AccessRequest, CollectiveHints, collective_read, \
    collective_write, independent_read
from ..mpi import RankContext
from ..pfs import (ArraySource, CompositeSource, DataSource, LustreFS,
                   PFSFile, ProceduralSource)
from ..profiling import PhaseTimeline

#: Bytes reserved at the start of a dataset file for the (simulated)
#: self-describing header.
HEADER_BYTES = 4096


@dataclass(frozen=True)
class VariableDef:
    """Define-mode description of one variable.

    Parameters
    ----------
    name:
        Variable name.
    shape:
        Extent per dimension, slowest first (C order).
    dtype:
        Element type.
    func:
        Optional vectorized generator ``f(linear_indices) -> values``
        for procedurally-backed variables; ``data`` for array-backed.
    data:
        Optional concrete array (must match ``shape``); writable.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: object = np.float64
    func: object = None
    data: Optional[np.ndarray] = None


def create_dataset(fs: LustreFS, filename: str,
                   variables: Sequence[VariableDef], *,
                   stripe_size: Optional[int] = None,
                   stripe_count: Optional[int] = None,
                   start_ost: int = 0) -> PFSFile:
    """Define-mode: create ``filename`` holding ``variables`` laid out
    sequentially after a header block.  Returns the PFS file; per-rank
    handles are obtained with :meth:`NCFile.open`."""
    # The header block is a writable array so files that mix array-backed
    # (writable) variables stay writable end to end.
    parts: List[DataSource] = [ArraySource(np.zeros(HEADER_BYTES, np.uint8))]
    specs: Dict[str, DatasetSpec] = {}
    offset = HEADER_BYTES
    for v in variables:
        dtype = np.dtype(v.dtype)
        n_elements = math.prod(v.shape)
        if v.data is not None:
            arr = np.asarray(v.data, dtype=dtype)
            if arr.shape != tuple(v.shape):
                raise DataspaceError(
                    f"variable {v.name!r}: data shape {arr.shape} != {v.shape}"
                )
            src: DataSource = ArraySource(arr)
        else:
            src = ProceduralSource(n_elements, dtype=dtype, func=v.func)
        parts.append(src)
        specs[v.name] = DatasetSpec(tuple(v.shape), dtype,
                                    file_offset=offset, name=v.name)
        offset += src.size
    file = fs.create_file(filename, CompositeSource(parts),
                          stripe_size=stripe_size,
                          stripe_count=stripe_count, start_ost=start_ost)
    # Attach the schema so per-rank handles can recover it.
    file.schema = dict(specs)  # type: ignore[attr-defined]
    return file


class Variable:
    """One rank's handle on one variable of an open dataset file."""

    def __init__(self, ncfile: "NCFile", spec: DatasetSpec) -> None:
        self.ncfile = ncfile
        self.spec = spec

    @property
    def name(self) -> str:
        """Variable name."""
        return self.spec.name

    @property
    def shape(self) -> Tuple[int, ...]:
        """Variable shape (C order)."""
        return self.spec.shape

    @property
    def dtype(self) -> np.dtype:
        """Element dtype."""
        return self.spec.dtype

    def _request(self, start: Sequence[int], count: Sequence[int]
                 ) -> AccessRequest:
        sub = Subarray(tuple(start), tuple(count))
        sub.validate(self.spec)
        return AccessRequest.from_subarray(self.spec, sub)

    # -- reads ----------------------------------------------------------
    def get_vara_all(self, start: Sequence[int], count: Sequence[int],
                     timeline: Optional[PhaseTimeline] = None) -> Generator:
        """Collective hyperslab read (``ncmpi_get_vara_*_all``).

        Returns the data shaped ``count``.
        """
        req = self._request(start, count)
        buf = yield from collective_read(self.ncfile.ctx, self.ncfile.file,
                                         req, self.ncfile.hints, timeline)
        return req.as_array(buf)

    def get_vara(self, start: Sequence[int], count: Sequence[int]
                 ) -> Generator:
        """Independent hyperslab read (``ncmpi_get_vara_*``)."""
        req = self._request(start, count)
        buf = yield from independent_read(self.ncfile.ctx, self.ncfile.file,
                                          req)
        return req.as_array(buf)

    def put_vara_all(self, start: Sequence[int], count: Sequence[int],
                     data: np.ndarray,
                     timeline: Optional[PhaseTimeline] = None) -> Generator:
        """Collective hyperslab write (``ncmpi_put_vara_*_all``)."""
        req = self._request(start, count)
        arr = np.ascontiguousarray(data, dtype=self.spec.dtype)
        yield from collective_write(self.ncfile.ctx, self.ncfile.file, req,
                                    arr, self.ncfile.hints, timeline)
        return None

    # -- collective computing ----------------------------------------------
    def object_get_vara(self, start: Sequence[int], count: Sequence[int],
                        op: MapReduceOp, *, block: bool = False,
                        mode: str = "collective",
                        reduce_mode: str = "all_to_all", root: int = 0,
                        timeline: Optional[PhaseTimeline] = None,
                        stats: Optional[CCStats] = None) -> Generator:
        """The paper's ``ncmpi_object_get_vara``: analysis-in-I/O.

        Builds the :class:`~repro.core.ObjectIO` from this variable and
        the rank's hyperslab, then dispatches (``block=True`` falls back
        to the traditional path).  Returns a
        :class:`~repro.core.runtime.CCResult`.
        """
        sub = Subarray(tuple(start), tuple(count))
        oio = ObjectIO(self.spec, sub, op, mode=mode, block=block,
                       reduce_mode=reduce_mode, root=root,
                       hints=self.ncfile.hints)
        result: CCResult = yield from object_get(
            self.ncfile.ctx, self.ncfile.file, oio, timeline, stats)
        return result


class NCFile:
    """One rank's handle on a dataset file created by
    :func:`create_dataset`."""

    def __init__(self, ctx: RankContext, file: PFSFile,
                 hints: Optional[CollectiveHints] = None) -> None:
        if not hasattr(file, "schema"):
            raise DataspaceError(
                f"{file.name!r} was not created by create_dataset"
            )
        self.ctx = ctx
        self.file = file
        self.hints = hints or CollectiveHints()

    @classmethod
    def open(cls, ctx: RankContext, filename: str,
             hints: Optional[CollectiveHints] = None) -> "NCFile":
        """Open a dataset file by name on the rank's file system."""
        return cls(ctx, ctx.fs.lookup(filename), hints=hints)

    def variables(self) -> List[str]:
        """Names of the variables in the file."""
        return list(self.file.schema)  # type: ignore[attr-defined]

    def var(self, name: str) -> Variable:
        """Handle on variable ``name``."""
        schema = self.file.schema  # type: ignore[attr-defined]
        if name not in schema:
            raise DataspaceError(
                f"no variable {name!r} in {self.file.name!r}; "
                f"have {sorted(schema)}"
            )
        return Variable(self, schema[name])
