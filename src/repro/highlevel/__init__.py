"""High-level, PnetCDF-flavoured access API.

**Role.** The programming surface applications use: netCDF-style files
and variables with ``get_vara_all`` (traditional collective read) and
``object_get_vara`` (collective computing) entry points.

**Paper mapping.** Figures 5-6 — the paper presents its interface as a
PnetCDF extension (``ncmpi_object_get_vara_float(io, op)``), and this
package mirrors that call shape.
"""

from .pnetcdf import HEADER_BYTES, NCFile, Variable, VariableDef, create_dataset

__all__ = ["HEADER_BYTES", "NCFile", "Variable", "VariableDef",
           "create_dataset"]
