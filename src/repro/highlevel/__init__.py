"""High-level, PnetCDF-flavoured access API (paper Figures 5-6)."""

from .pnetcdf import HEADER_BYTES, NCFile, Variable, VariableDef, create_dataset

__all__ = ["HEADER_BYTES", "NCFile", "Variable", "VariableDef",
           "create_dataset"]
