"""Measurement: CPU-state accounting, phase timelines, text reports."""

from .ascii_plot import ascii_plot, plot_columns
from .cpu import CpuProfiler, Interval, KINDS
from .report import format_bar_chart, format_kv, format_table
from .timeline import PhaseSample, PhaseTimeline
from .trace import build_trace, write_trace

__all__ = [
    "ascii_plot", "plot_columns",
    "CpuProfiler", "Interval", "KINDS",
    "PhaseSample", "PhaseTimeline",
    "format_bar_chart", "format_kv", "format_table",
    "build_trace", "write_trace",
]
