"""Measurement: CPU-state accounting, phase timelines, text reports.

**Role.** How simulated runs are observed: per-rank CPU-state intervals
(user/sys/wait), per-phase timelines (read/map/shuffle, plus the
recovery/degraded phases of faulted runs), ASCII tables/plots, and
Chrome-trace export for Perfetto.

**Paper mapping.** The instrumentation behind the paper's measurements:
Figure 1's I/O-phase profile, Figures 2-3's CPU utilization breakdowns,
and the timing columns of every §V figure.
"""

from .ascii_plot import ascii_plot, plot_columns
from .cpu import CpuProfiler, Interval, KINDS
from .report import format_bar_chart, format_kv, format_table
from .timeline import PhaseSample, PhaseTimeline
from .trace import build_trace, write_trace

__all__ = [
    "ascii_plot", "plot_columns",
    "CpuProfiler", "Interval", "KINDS",
    "PhaseSample", "PhaseTimeline",
    "format_bar_chart", "format_kv", "format_table",
    "build_trace", "write_trace",
]
