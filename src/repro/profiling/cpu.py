"""CPU-state accounting: user / sys / wait intervals per rank.

Reproduces the measurements behind the paper's Figures 2-3: while a
two-phase collective read runs, how much core time is user computation,
how much is system time (pack/unpack/copy), and how much is I/O wait.

The runtime records labelled intervals; :meth:`CpuProfiler.series` bins
them over simulated time and reports percentages exactly like the
``top``-style traces in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ReproError

#: Recognized CPU states.
KINDS = ("user", "sys", "wait")


@dataclass(frozen=True)
class Interval:
    """One labelled span of a rank's time."""

    rank: int
    kind: str
    start: float
    end: float


class CpuProfiler:
    """Collects labelled intervals and aggregates them.

    Parameters
    ----------
    nprocs:
        Ranks being profiled (denominator for percentages).
    """

    def __init__(self, nprocs: int) -> None:
        if nprocs < 1:
            raise ReproError(f"need >= 1 rank, got {nprocs}")
        self.nprocs = nprocs
        self.intervals: List[Interval] = []

    def record(self, rank: int, kind: str, start: float, end: float) -> None:
        """Add one interval; zero-length intervals are dropped."""
        if kind not in KINDS:
            raise ReproError(f"unknown CPU state {kind!r}; expected {KINDS}")
        if end < start:
            raise ReproError(f"interval ends before it starts: [{start}, {end}]")
        if end > start:
            self.intervals.append(Interval(rank, kind, start, end))

    # -- aggregation --------------------------------------------------------
    def merged_intervals(self) -> List[Interval]:
        """Intervals with per-(rank, kind) overlaps coalesced.

        A rank blocked in two concurrent sub-activities (e.g. its
        receiver loop and its aggregator loop) is *one* waiting process;
        merging keeps every percentage within 100%.
        """
        by_key: Dict[Tuple[int, str], List[Interval]] = {}
        for iv in self.intervals:
            by_key.setdefault((iv.rank, iv.kind), []).append(iv)
        merged: List[Interval] = []
        for (rank, kind), ivs in by_key.items():
            ivs.sort(key=lambda i: i.start)
            cur_start, cur_end = ivs[0].start, ivs[0].end
            for iv in ivs[1:]:
                if iv.start <= cur_end:
                    cur_end = max(cur_end, iv.end)
                else:
                    merged.append(Interval(rank, kind, cur_start, cur_end))
                    cur_start, cur_end = iv.start, iv.end
            merged.append(Interval(rank, kind, cur_start, cur_end))
        return merged

    def totals(self) -> Dict[str, float]:
        """Total seconds per state across all ranks (overlaps merged)."""
        out = {k: 0.0 for k in KINDS}
        for iv in self.merged_intervals():
            out[iv.kind] += iv.end - iv.start
        return out

    def span(self) -> Tuple[float, float]:
        """``(earliest start, latest end)`` over recorded intervals."""
        if not self.intervals:
            return (0.0, 0.0)
        return (min(iv.start for iv in self.intervals),
                max(iv.end for iv in self.intervals))

    def series(self, bin_width: float, t_start: float | None = None,
               t_end: float | None = None) -> List[Dict[str, float]]:
        """Percentage of rank-time per state, binned over simulated time.

        Each entry: ``{"t": bin_start, "user": %, "sys": %, "wait": %,
        "idle": %}``; percentages are of ``nprocs * bin_width`` rank-
        seconds, so the four values sum to 100 within rounding.
        """
        if bin_width <= 0:
            raise ReproError(f"bin width must be positive, got {bin_width}")
        lo, hi = self.span()
        if t_start is not None:
            lo = t_start
        if t_end is not None:
            hi = t_end
        if hi <= lo:
            return []
        nbins = int((hi - lo) // bin_width) + 1
        acc = [{k: 0.0 for k in KINDS} for _ in range(nbins)]
        for iv in self.merged_intervals():
            start = max(iv.start, lo)
            end = min(iv.end, hi)
            if end <= start:
                continue
            b_first = max(0, int((start - lo) // bin_width))
            b_last = min(nbins - 1, int((end - lo) // bin_width))
            for b in range(b_first, b_last + 1):
                bin_lo = lo + b * bin_width
                chunk = min(end, bin_lo + bin_width) - max(start, bin_lo)
                if chunk > 0:
                    acc[b][iv.kind] += chunk
        denom = self.nprocs * bin_width
        out = []
        for b, counts in enumerate(acc):
            row = {"t": lo + b * bin_width}
            used = 0.0
            for k in KINDS:
                pct = 100.0 * counts[k] / denom
                row[k] = pct
                used += pct
            row["idle"] = max(0.0, 100.0 - used)
            out.append(row)
        # Trim trailing all-idle bins created by the ceiling above.
        while out and all(out[-1][k] == 0.0 for k in KINDS):
            out.pop()
        return out

    def percentages(self) -> Dict[str, float]:
        """Overall state percentages over the busy span (idle included)."""
        lo, hi = self.span()
        if hi <= lo:
            return {k: 0.0 for k in KINDS} | {"idle": 100.0}
        denom = self.nprocs * (hi - lo)
        totals = self.totals()
        out = {k: 100.0 * totals[k] / denom for k in KINDS}
        out["idle"] = max(0.0, 100.0 - sum(out.values()))
        return out
