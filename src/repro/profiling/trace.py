"""Chrome-trace export for simulated runs.

Converts the measurement objects (:class:`~repro.profiling.CpuProfiler`
intervals, :class:`~repro.profiling.PhaseTimeline` samples) into the
Trace Event Format consumed by ``chrome://tracing`` / Perfetto, so a
simulated job can be inspected on a real timeline: one track per rank,
complete events for user/sys/wait states and for read/map/shuffle
phases, and instant events for every injected fault and recovery action
(:class:`~repro.faults.FaultRecord`) so a slow run can be read against
what was done to it.

Simulated seconds are emitted as microseconds (the format's unit).
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional

from .cpu import CpuProfiler
from .timeline import PhaseTimeline

#: Trace-viewer colour names per CPU state / phase.
COLOR_BY_NAME = {
    "user": "thread_state_running",
    "sys": "thread_state_iowait",
    "wait": "thread_state_sleeping",
    "read": "rail_load",
    "map": "rail_animation",
    "shuffle": "rail_response",
    "write": "rail_load",
    "compute": "rail_animation",
    "recovery": "bad",
    "degraded": "terrible",
}

#: Colour per fault-record kind prefix: injections red, recoveries
#: yellow, integrity detections amber (the viewer's palette names, as
#: above).
FAULT_COLOR_BY_PREFIX = {
    "inject": "terrible",
    "recover": "bad",
    "detect": "yellow",
}

_RANK_LOCATION = re.compile(r"^rank(\d+)$")


def _event(name: str, pid: int, tid: int, start: float, end: float,
           category: str) -> Dict:
    ev = {
        "name": name,
        "cat": category,
        "ph": "X",  # complete event
        "pid": pid,
        "tid": tid,
        "ts": start * 1e6,
        "dur": (end - start) * 1e6,
    }
    cname = COLOR_BY_NAME.get(name)
    if cname:
        ev["cname"] = cname
    return ev


def _fault_event(record) -> Dict:
    """One :class:`~repro.faults.FaultRecord` as an instant event in
    process 2; records at a ``rankN`` location land on that rank's
    track, machine-level ones (``ost3``, ``job``) on track 0."""
    match = _RANK_LOCATION.match(record.location)
    tid = int(match.group(1)) if match else 0
    prefix, _, _ = record.kind.partition(":")
    ev = {
        "name": record.kind,
        "cat": "faults",
        "ph": "i",  # instant event
        "s": "p",   # process-scoped: visible across the track group
        "pid": 2,
        "tid": tid,
        "ts": record.time * 1e6,
        "args": {"location": record.location, "detail": record.detail},
    }
    cname = FAULT_COLOR_BY_PREFIX.get(prefix)
    if cname:
        ev["cname"] = cname
    return ev


def build_trace(cpu: Optional[CpuProfiler] = None,
                timeline: Optional[PhaseTimeline] = None,
                job_name: str = "repro",
                faults: Optional[Iterable] = None) -> Dict:
    """Assemble a Trace Event Format document.

    CPU states land in process 0 ("cpu"), phase samples in process 1
    ("phases"), fault/recovery records in process 2 ("faults"); thread
    id = rank in all three.  ``faults`` accepts an iterable of
    :class:`~repro.faults.FaultRecord` or a
    :class:`~repro.faults.FaultInjector` (its ``records`` are taken).
    """
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": f"{job_name}: cpu states"}},
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": f"{job_name}: io phases"}},
    ]
    if cpu is not None:
        for iv in cpu.merged_intervals():
            events.append(_event(iv.kind, 0, iv.rank, iv.start, iv.end,
                                 "cpu"))
    if timeline is not None:
        for s in timeline.samples:
            events.append(_event(s.phase, 1, s.rank, s.start, s.end,
                                 f"iter{s.iteration}"))
    if faults is not None:
        records = getattr(faults, "records", faults)
        if records:
            events.append({"name": "process_name", "ph": "M", "pid": 2,
                           "args": {"name": f"{job_name}: faults"}})
        for record in records:
            events.append(_fault_event(record))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(path: str, cpu: Optional[CpuProfiler] = None,
                timeline: Optional[PhaseTimeline] = None,
                job_name: str = "repro",
                faults: Optional[Iterable] = None) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    doc = build_trace(cpu, timeline, job_name, faults)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
