"""Chrome-trace export for simulated runs.

Converts the measurement objects (:class:`~repro.profiling.CpuProfiler`
intervals, :class:`~repro.profiling.PhaseTimeline` samples) into the
Trace Event Format consumed by ``chrome://tracing`` / Perfetto, so a
simulated job can be inspected on a real timeline: one track per rank,
complete events for user/sys/wait states and for read/map/shuffle
phases.

Simulated seconds are emitted as microseconds (the format's unit).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .cpu import CpuProfiler
from .timeline import PhaseTimeline

#: Trace-viewer colour names per CPU state / phase.
COLOR_BY_NAME = {
    "user": "thread_state_running",
    "sys": "thread_state_iowait",
    "wait": "thread_state_sleeping",
    "read": "rail_load",
    "map": "rail_animation",
    "shuffle": "rail_response",
    "write": "rail_load",
    "compute": "rail_animation",
}


def _event(name: str, pid: int, tid: int, start: float, end: float,
           category: str) -> Dict:
    ev = {
        "name": name,
        "cat": category,
        "ph": "X",  # complete event
        "pid": pid,
        "tid": tid,
        "ts": start * 1e6,
        "dur": (end - start) * 1e6,
    }
    cname = COLOR_BY_NAME.get(name)
    if cname:
        ev["cname"] = cname
    return ev


def build_trace(cpu: Optional[CpuProfiler] = None,
                timeline: Optional[PhaseTimeline] = None,
                job_name: str = "repro") -> Dict:
    """Assemble a Trace Event Format document.

    CPU states land in process 0 ("cpu"), phase samples in process 1
    ("phases"); thread id = rank in both.
    """
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": f"{job_name}: cpu states"}},
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": f"{job_name}: io phases"}},
    ]
    if cpu is not None:
        for iv in cpu.merged_intervals():
            events.append(_event(iv.kind, 0, iv.rank, iv.start, iv.end,
                                 "cpu"))
    if timeline is not None:
        for s in timeline.samples:
            events.append(_event(s.phase, 1, s.rank, s.start, s.end,
                                 f"iter{s.iteration}"))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(path: str, cpu: Optional[CpuProfiler] = None,
                timeline: Optional[PhaseTimeline] = None,
                job_name: str = "repro") -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    doc = build_trace(cpu, timeline, job_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
