"""Plain-text rendering of experiment results.

Every experiment regenerates its paper table/figure as text: a table of
rows (for tables and line series) and optionally an ASCII bar chart for
the speedup figures.  Keeping rendering here lets benchmarks and the
``python -m repro.experiments`` CLI share one look.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(labels: Sequence[str], values: Sequence[float],
                     width: int = 50, title: Optional[str] = None,
                     unit: str = "") -> str:
    """Render a horizontal ASCII bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values differ in length")
    vmax = max((abs(v) for v in values), default=0.0)
    scale = (width / vmax) if vmax > 0 else 0.0
    label_w = max((len(str(l)) for l in labels), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, v in zip(labels, values):
        bar = "#" * max(0, int(round(v * scale)))
        lines.append(f"{str(label).ljust(label_w)} | {bar} {_fmt_cell(v)}{unit}")
    return "\n".join(lines)


def format_kv(pairs: Sequence[tuple], title: Optional[str] = None) -> str:
    """Render ``key: value`` lines (experiment headers/settings)."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    key_w = max((len(str(k)) for k, _ in pairs), default=0)
    for k, v in pairs:
        lines.append(f"{str(k).ljust(key_w)} : {_fmt_cell(v)}")
    return "\n".join(lines)
