"""Per-iteration phase timing (the measurement behind Figure 1).

Two-phase collective I/O proceeds in iterations bounded by the
collective buffer size; the paper profiles the *read* and *shuffle*
time of every iteration separately.  :class:`PhaseTimeline` collects
``(iteration, phase, duration)`` samples from the I/O layer and exposes
the per-iteration series plus phase totals.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs import metrics


@dataclass(frozen=True)
class PhaseSample:
    """One timing sample emitted by the I/O layer."""

    rank: int
    iteration: int
    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Elapsed simulated seconds."""
        return self.end - self.start


class PhaseTimeline:
    """Accumulates phase samples across ranks and iterations."""

    def __init__(self) -> None:
        self.samples: List[PhaseSample] = []

    def record(self, rank: int, iteration: int, phase: str,
               start: float, end: float) -> None:
        """Add one sample (``end >= start`` required)."""
        if end < start:
            raise ReproError(f"phase ends before it starts: [{start}, {end}]")
        self.samples.append(PhaseSample(rank, iteration, phase, start, end))
        m = metrics.current()
        if m is not None:
            m.count(f"sim.phase.{phase}", end - start)

    def phases(self) -> List[str]:
        """Distinct phase names, in first-seen order."""
        seen: Dict[str, None] = {}
        for s in self.samples:
            seen.setdefault(s.phase, None)
        return list(seen)

    def per_iteration(self, phase: str, reduce: str = "max"
                      ) -> List[Tuple[int, float]]:
        """``(iteration, duration)`` series for ``phase``.

        Multiple ranks contribute to the same iteration; ``reduce``
        selects how they merge: ``"max"`` (the critical path, as the
        paper plots), ``"sum"`` or ``"mean"``.
        """
        if reduce not in ("max", "sum", "mean"):
            raise ReproError(f"unknown reduce {reduce!r}")
        buckets: Dict[int, List[float]] = defaultdict(list)
        for s in self.samples:
            if s.phase == phase:
                buckets[s.iteration].append(s.duration)
        out = []
        for it in sorted(buckets):
            vals = buckets[it]
            if reduce == "max":
                v = max(vals)
            elif reduce == "sum":
                v = sum(vals)
            else:
                v = sum(vals) / len(vals)
            out.append((it, v))
        return out

    def total(self, phase: str) -> float:
        """Sum of all sample durations for ``phase`` (rank-seconds)."""
        return sum(s.duration for s in self.samples if s.phase == phase)

    def critical_total(self, phase: str) -> float:
        """Sum over iterations of the slowest rank's duration — the
        phase's contribution to the critical path."""
        return sum(d for _, d in self.per_iteration(phase, reduce="max"))

    def iteration_count(self) -> int:
        """Number of distinct iterations seen."""
        return len({s.iteration for s in self.samples})

    def clear(self) -> None:
        """Drop all samples (reuse between experiment phases)."""
        self.samples.clear()
