"""ASCII line/scatter plots for experiment series.

The paper's figures are line plots; the CLI renders a textual
approximation so a regenerated figure can be eyeballed without leaving
the terminal: multiple named series over a shared x-axis, down-sampled
into a fixed-width character grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Glyphs assigned to series, in order.
GLYPHS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(frac * (cells - 1)))))


def ascii_plot(series: Dict[str, Sequence[Tuple[float, float]]],
               width: int = 72, height: int = 16,
               title: Optional[str] = None,
               x_label: str = "x", y_label: str = "y") -> str:
    """Render named ``(x, y)`` series into a character grid.

    Parameters
    ----------
    series:
        Mapping from series name to its points; each series gets the
        next glyph from :data:`GLYPHS`.  Later series overwrite earlier
        ones where they collide.
    width / height:
        Plot area size in characters (axes excluded).
    """
    if not series or all(len(pts) == 0 for pts in series.values()):
        return "(empty plot)"
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo > 0 and y_lo < 0.25 * y_hi:
        y_lo = 0.0  # anchor near-zero series at zero, like the paper
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), glyph in zip(series.items(), GLYPHS):
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = glyph
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    label_w = max(len(y_hi_label), len(y_lo_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = y_hi_label.rjust(label_w)
        elif r == height - 1:
            prefix = y_lo_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + "-+" + "-" * width)
    x_axis = (f"{x_lo:.4g}".ljust(width // 2)
              + f"{x_hi:.4g}".rjust(width - width // 2))
    lines.append(" " * label_w + "  " + x_axis)
    legend = "  ".join(f"{glyph}={name}" for (name, _), glyph
                       in zip(series.items(), GLYPHS))
    lines.append(f"[{x_label} vs {y_label}]  {legend}")
    return "\n".join(lines)


def plot_columns(headers: Sequence[str], rows: Sequence[Sequence],
                 x: str, ys: Sequence[str], **kwargs) -> str:
    """Plot table columns: ``x`` column against each column in ``ys``.

    Non-numeric x values fall back to their row index (categorical
    axes like "10:1").
    """
    xi = list(headers).index(x)
    series: Dict[str, List[Tuple[float, float]]] = {}
    for name in ys:
        yi = list(headers).index(name)
        pts = []
        for k, row in enumerate(rows):
            try:
                xv = float(row[xi])
            except (TypeError, ValueError):
                xv = float(k)
            pts.append((xv, float(row[yi])))
        series[name] = pts
    return ascii_plot(series, x_label=x, y_label="/".join(ys), **kwargs)
