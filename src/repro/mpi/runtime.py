"""Launching MPI jobs on the simulated machine.

:func:`mpi_run` is the simulator's ``mpiexec``: it places ``nprocs``
ranks on the machine, hands each a :class:`RankContext`, runs every rank
body as a kernel process and returns their return values.

:class:`RankContext` is what a rank's code sees: its rank/size, the
communicator handle, the machine (file system, network), and CPU-time
primitives (:meth:`RankContext.compute`, :meth:`RankContext.memcpy`)
that occupy a core slot on the rank's node and feed the CPU profiler.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..cluster import Machine, Node
from ..errors import MPIError
from ..obs import metrics
from ..profiling import CpuProfiler
from ..sim import Event, Kernel
from .comm import CommHandle, Communicator


class RankContext:
    """Everything one MPI rank can touch.

    Attributes
    ----------
    rank / size:
        This rank's id and the job size.
    comm:
        The rank's :class:`~repro.mpi.comm.CommHandle` (COMM_WORLD view).
    machine:
        The simulated machine (``machine.fs`` is the file system).
    node:
        The compute node hosting this rank.
    profiler:
        Optional :class:`~repro.profiling.CpuProfiler` receiving
        user/sys/wait intervals.
    """

    def __init__(self, comm_handle: CommHandle, machine: Machine,
                 node: Node, profiler: Optional[CpuProfiler] = None) -> None:
        self.comm = comm_handle
        self.machine = machine
        self.node = node
        self.profiler = profiler

    @property
    def rank(self) -> int:
        """This rank's id."""
        return self.comm.rank

    @property
    def size(self) -> int:
        """Number of ranks in the job."""
        return self.comm.size

    @property
    def kernel(self) -> Kernel:
        """The simulation kernel."""
        return self.comm.kernel

    @property
    def fs(self):
        """The machine's parallel file system."""
        return self.machine.fs

    @property
    def cost(self):
        """The platform cost model."""
        return self.machine.cost

    # -- CPU primitives ------------------------------------------------------
    def compute(self, elements: int, ops_per_element: float = 1.0) -> Generator:
        """Occupy one core for the time to process ``elements`` values.

        Recorded as *user* time.  Scaled by the node's ``slowdown`` so
        straggler injection affects analysis work.
        """
        duration = self.cost.compute_time(elements, ops_per_element)
        duration *= self.node.slowdown
        yield from self._occupy_core(duration, "user")

    def compute_seconds(self, seconds: float) -> Generator:
        """Occupy one core for a fixed duration of *user* work."""
        yield from self._occupy_core(seconds * self.node.slowdown, "user")

    def compute_parallel(self, elements: int, ops_per_element: float = 1.0,
                         ways: Optional[int] = None) -> Generator:
        """Compute using up to ``ways`` cores of this node concurrently.

        Models the threaded runtime of the paper's Figure 7: a
        collective-computing aggregator maps the freshly read window
        with worker threads on its node's otherwise-idle cores (the
        node's other ranks are blocked waiting for partial results).
        Work splits evenly; queueing at the core resource handles the
        case where other ranks are genuinely computing.
        """
        if ways is None:
            ways = self.node.n_cores
        ways = max(1, min(int(ways), self.node.n_cores, max(elements, 1)))
        total = self.cost.compute_time(elements, ops_per_element)
        total *= self.node.slowdown
        if total <= 0:
            return
        if ways == 1:
            yield from self._occupy_core(total, "user")
            return
        share = total / ways
        workers = [
            self.kernel.process(self._occupy_core(share, "user"),
                                name=f"mapworker:r{self.rank}.{w}")
            for w in range(ways)
        ]
        yield self.kernel.all_of(workers)

    def memcpy(self, nbytes: int) -> Generator:
        """Occupy one core for a pack/unpack/copy of ``nbytes``
        (*system* time)."""
        yield from self._occupy_core(self.cost.memcpy_time(nbytes), "sys")

    def _occupy_core(self, duration: float, kind: str) -> Generator:
        if duration <= 0:
            return
        req = self.node.cores.request()
        yield req
        start = self.kernel.now
        try:
            yield self.kernel.timeout(duration)
        finally:
            self.node.cores.release(req)
            if self.profiler is not None:
                self.profiler.record(self.rank, kind, start, self.kernel.now)

    def wait_recording(self, event: Event, kind: str = "wait") -> Generator:
        """Yield on ``event`` and record the blocked span in the profiler.

        Used by the I/O layer so time blocked on disk or on the shuffle
        shows up as *wait* in CPU profiles (Figures 2-3).
        """
        start = self.kernel.now
        value = yield event
        if self.profiler is not None and self.kernel.now > start:
            self.profiler.record(self.rank, kind, start, self.kernel.now)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RankContext rank={self.rank}/{self.size} node={self.node.index}>"


def build_contexts(machine: Machine, nprocs: int,
                   profiler: Optional[CpuProfiler] = None,
                   allow_oversubscribe: bool = False) -> List[RankContext]:
    """Create the communicator and one context per rank."""
    machine.validate_job(nprocs, allow_oversubscribe=allow_oversubscribe)
    comm = Communicator(machine.kernel, machine, nprocs)
    return [
        RankContext(comm.handle(r), machine,
                    machine.nodes[machine.node_of_rank(r, nprocs)],
                    profiler=profiler)
        for r in range(nprocs)
    ]


def mpi_run(machine: Machine, nprocs: int,
            main: Callable[..., Generator], *args: Any,
            profiler: Optional[CpuProfiler] = None,
            allow_oversubscribe: bool = False,
            run_kernel: bool = True) -> List[Any]:
    """Run ``main(ctx, *args)`` as an ``nprocs``-rank MPI job.

    Returns the list of per-rank return values (rank order).  With
    ``run_kernel=False`` the processes are spawned but the caller drives
    the kernel (to co-schedule several jobs); the returned list then
    holds the :class:`~repro.sim.Process` objects instead.
    """
    contexts = build_contexts(machine, nprocs, profiler=profiler,
                              allow_oversubscribe=allow_oversubscribe)
    procs = [
        machine.kernel.process(main(ctx, *args), name=f"rank{ctx.rank}")
        for ctx in contexts
    ]
    if not run_kernel:
        return procs
    machine.kernel.run()
    m = metrics.current()
    if m is not None:
        # Sampled once per job (never inside the event loop): the event
        # count is the kernel's schedule sequence number, the simulated
        # wall is its clock at quiescence.
        m.count("sim.runs")
        m.count("sim.events", machine.kernel._seq)
        m.count("sim.time", machine.kernel.now)
    for p in procs:
        if not p.triggered:  # pragma: no cover - defensive
            raise MPIError(f"rank process {p!r} never finished")
    return [p.value for p in procs]
