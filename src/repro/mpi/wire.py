"""Estimating on-the-wire sizes of message payloads.

The simulator moves real Python objects between ranks but charges the
network by byte count.  :func:`wire_size` maps a payload to the bytes a
real implementation would transmit: exact for arrays/bytes, small fixed
costs for scalars, recursive for containers, and objects can opt in by
defining a ``wire_size()`` method (used by the collective-computing
partial results, whose metadata size is itself a measured quantity in
the paper's Figure 12).
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: Fixed framing overhead charged per container object.
CONTAINER_OVERHEAD = 16
#: Charge for values we cannot introspect.
OPAQUE_SIZE = 64


def wire_size(obj: Any) -> int:
    """Bytes a message carrying ``obj`` occupies on the wire."""
    if obj is None:
        return 1
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, int, float, complex,
                        np.integer, np.floating, np.bool_)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    size_fn = getattr(obj, "wire_size", None)
    if callable(size_fn):
        return int(size_fn())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return CONTAINER_OVERHEAD + sum(wire_size(x) for x in obj)
    if isinstance(obj, dict):
        return CONTAINER_OVERHEAD + sum(
            wire_size(k) + wire_size(v) for k, v in obj.items()
        )
    return OPAQUE_SIZE
