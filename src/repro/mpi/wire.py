"""Estimating on-the-wire sizes of message payloads.

The simulator moves real Python objects between ranks but charges the
network by byte count.  :func:`wire_size` maps a payload to the bytes a
real implementation would transmit: exact for arrays/bytes, small fixed
costs for scalars, recursive for containers, and objects can opt in by
defining a ``wire_size()`` method (used by the collective-computing
partial results, whose metadata size is itself a measured quantity in
the paper's Figure 12).
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: Fixed framing overhead charged per container object.
CONTAINER_OVERHEAD = 16
#: Charge for values we cannot introspect.
OPAQUE_SIZE = 64


def wire_size(obj: Any) -> int:
    """Bytes a message carrying ``obj`` occupies on the wire."""
    if obj is None:
        return 1
    # Exact-type fast paths for the hot shuffle payloads (lists/tuples
    # of offsets and arrays); exotic subclasses fall through to the
    # general isinstance chain with identical results.
    cls = type(obj)
    if cls is int or cls is float:
        return 8
    if cls is np.ndarray:
        return obj.nbytes
    if cls is tuple or cls is list:
        total = CONTAINER_OVERHEAD
        for x in obj:
            cx = type(x)
            total += 8 if (cx is int or cx is float) else wire_size(x)
        return total
    if cls is dict:
        total = CONTAINER_OVERHEAD
        for key, val in obj.items():
            ck = type(key)
            total += 8 if (ck is int or ck is float) else wire_size(key)
            cv = type(val)
            total += 8 if (cv is int or cv is float) else wire_size(val)
        return total
    # Objects measuring themselves (RunList, PartialResult, ...) are the
    # hot payloads left after the exact-type checks; none of the plain
    # types below defines a wire_size method, so asking first is safe.
    size_fn = getattr(obj, "wire_size", None)
    if size_fn is not None and callable(size_fn):
        return int(size_fn())
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, int, float, complex,
                        np.integer, np.floating, np.bool_)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (tuple, list, set, frozenset)):
        return CONTAINER_OVERHEAD + sum(wire_size(x) for x in obj)
    if isinstance(obj, dict):
        return CONTAINER_OVERHEAD + sum(
            wire_size(k) + wire_size(v) for k, v in obj.items()
        )
    return OPAQUE_SIZE
