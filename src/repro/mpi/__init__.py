"""Simulated MPI: point-to-point, collectives, datatypes, ops, runtime.

**Role.** The message-passing substrate: ranks as coroutines
(:func:`mpi_run`), point-to-point with real MPI matching semantics,
binomial/Bruck/pairwise collectives built on it, derived datatypes and
reduction ops.

**Paper mapping.** Stands in for the MPICH 3.1.2 of the §V testbed;
the §III-C results reduce (all-to-one / all-to-all) and the two-phase
shuffle ride these primitives, and the fault injector
(:mod:`repro.faults`) intercepts this layer's messages for drop/delay
faults.
"""

from . import collectives
from .comm import (ANY_SOURCE, ANY_TAG, MIN_RESERVED_TAG, CommHandle,
                   Communicator, Message, Request)
from .datatypes import (BYTE, DOUBLE, FLOAT, INT, LONG, Basic, Contiguous,
                        Datatype, SubarrayType, Vector)
from .op import (BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM,
                 Op, lookup)
from .runtime import RankContext, build_contexts, mpi_run
from .wire import wire_size

__all__ = [
    "collectives",
    "ANY_SOURCE", "ANY_TAG", "MIN_RESERVED_TAG",
    "CommHandle", "Communicator", "Message", "Request",
    "BYTE", "DOUBLE", "FLOAT", "INT", "LONG",
    "Basic", "Contiguous", "Datatype", "SubarrayType", "Vector",
    "BAND", "BOR", "LAND", "LOR", "MAX", "MAXLOC", "MIN", "MINLOC",
    "PROD", "SUM", "Op", "lookup",
    "RankContext", "build_contexts", "mpi_run",
    "wire_size",
]
