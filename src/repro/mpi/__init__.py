"""Simulated MPI: point-to-point, collectives, datatypes, ops, runtime."""

from . import collectives
from .comm import (ANY_SOURCE, ANY_TAG, MIN_RESERVED_TAG, CommHandle,
                   Communicator, Message, Request)
from .datatypes import (BYTE, DOUBLE, FLOAT, INT, LONG, Basic, Contiguous,
                        Datatype, SubarrayType, Vector)
from .op import (BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM,
                 Op, lookup)
from .runtime import RankContext, build_contexts, mpi_run
from .wire import wire_size

__all__ = [
    "collectives",
    "ANY_SOURCE", "ANY_TAG", "MIN_RESERVED_TAG",
    "CommHandle", "Communicator", "Message", "Request",
    "BYTE", "DOUBLE", "FLOAT", "INT", "LONG",
    "Basic", "Contiguous", "Datatype", "SubarrayType", "Vector",
    "BAND", "BOR", "LAND", "LOR", "MAX", "MAXLOC", "MIN", "MINLOC",
    "PROD", "SUM", "Op", "lookup",
    "RankContext", "build_contexts", "mpi_run",
    "wire_size",
]
