"""Collective operations built on point-to-point messages.

The algorithms mirror MPICH's defaults, so communication volume and
latency scale the same way they do on the paper's testbed:

* ``barrier`` — dissemination (⌈log2 P⌉ rounds).
* ``bcast`` / ``reduce`` — binomial trees.
* ``allreduce`` — reduce to 0 + bcast.
* ``gather`` / ``scatter`` — linear with the root.
* ``allgather`` — ring (P-1 steps).
* ``alltoall`` — P-1 pairwise exchange rounds; per-destination payloads
  of arbitrary (differing) sizes make this double as ``alltoallv``.

Every function is a generator to be driven with ``yield from`` inside a
rank process, and must be invoked by **all** ranks of the communicator
in the same program order (the SPMD discipline a real MPI requires).
Tags are reserved per collective call via
:meth:`~repro.mpi.comm.CommHandle.next_collective_tags`.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from ..errors import MPIError
from .comm import ANY_SOURCE, CommHandle
from .op import Op
from .wire import CONTAINER_OVERHEAD, wire_size


def _ceil_log2(n: int) -> int:
    bits = 0
    while (1 << bits) < n:
        bits += 1
    return bits


def barrier(comm: CommHandle) -> Generator:
    """Dissemination barrier: no rank leaves before all have entered."""
    comm.trace_collective("barrier")
    size, rank = comm.size, comm.rank
    rounds = _ceil_log2(size)
    base_tag = comm.next_collective_tags(max(rounds, 1))
    mask = 1
    for k in range(rounds):
        dest = (rank + mask) % size
        src = (rank - mask) % size
        req = comm.isend(None, dest, base_tag + k, nbytes=8)
        yield from comm.recv(src, base_tag + k)
        yield req.event
        mask <<= 1
    comm.trace_collective_exit("barrier")
    return None


def bcast(comm: CommHandle, data: Any, root: int = 0) -> Generator:
    """Binomial-tree broadcast; returns the broadcast value on all ranks."""
    comm.trace_collective("bcast", data)
    size, rank = comm.size, comm.rank
    comm.comm.check_rank(root)
    tag = comm.next_collective_tags(1)
    if size == 1:
        comm.trace_collective_exit("bcast")
        return data
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            src = (relative - mask + root) % size
            data = yield from comm.recv(src, tag)
            break
        mask <<= 1
    mask >>= 1
    pending = []
    while mask > 0:
        if relative + mask < size:
            dest = (relative + mask + root) % size
            pending.append(comm.isend(data, dest, tag))
        mask >>= 1
    for req in pending:
        yield req.event
    comm.trace_collective_exit("bcast")
    return data


def reduce(comm: CommHandle, value: Any, op: Op, root: int = 0) -> Generator:
    """Binomial-tree reduction; the combined value lands on ``root``
    (other ranks get ``None``).

    Non-commutative operators are combined in rank order within each
    tree merge (lower rank's value on the left), matching MPI's
    canonical-order guarantee for binomial trees.
    """
    comm.trace_collective("reduce", value)
    size, rank = comm.size, comm.rank
    comm.comm.check_rank(root)
    tag = comm.next_collective_tags(1)
    if size == 1:
        comm.trace_collective_exit("reduce")
        return value
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask == 0:
            partner_rel = relative | mask
            if partner_rel < size:
                src = (partner_rel + root) % size
                other = yield from comm.recv(src, tag)
                # The partner has a higher relative rank: it goes right.
                value = op(value, other)
                comm.note_reduce_step(op, src)
        else:
            dest = ((relative & ~mask) + root) % size
            yield from comm.send(value, dest, tag)
            value = None
            break
        mask <<= 1
    comm.trace_collective_exit("reduce")
    return value if rank == root else None


def allreduce(comm: CommHandle, value: Any, op: Op) -> Generator:
    """Reduce to rank 0, then broadcast the result to everyone."""
    comm.trace_collective("allreduce", value)
    reduced = yield from reduce(comm, value, op, root=0)
    result = yield from bcast(comm, reduced, root=0)
    comm.trace_collective_exit("allreduce")
    return result


def gather(comm: CommHandle, value: Any, root: int = 0) -> Generator:
    """Linear gather; ``root`` returns the list of per-rank values in
    rank order, other ranks return ``None``."""
    comm.trace_collective("gather", value)
    size, rank = comm.size, comm.rank
    comm.comm.check_rank(root)
    tag = comm.next_collective_tags(1)
    if rank == root:
        out: List[Any] = [None] * size
        out[root] = value
        for src in range(size):
            if src == root:
                continue
            out[src] = yield from comm.recv(src, tag)
        comm.trace_collective_exit("gather")
        return out
    yield from comm.send(value, root, tag)
    comm.trace_collective_exit("gather")
    return None


def scatter(comm: CommHandle, values: Optional[Sequence[Any]],
            root: int = 0) -> Generator:
    """Linear scatter; every rank returns its element of the root's list."""
    comm.trace_collective("scatter")
    size, rank = comm.size, comm.rank
    comm.comm.check_rank(root)
    tag = comm.next_collective_tags(1)
    if rank == root:
        if values is None or len(values) != size:
            raise MPIError(
                f"scatter root needs a list of exactly {size} values"
            )
        pending = []
        for dest in range(size):
            if dest == root:
                continue
            pending.append(comm.isend(values[dest], dest, tag))
        for req in pending:
            yield req.event
        comm.trace_collective_exit("scatter")
        return values[root]
    data = yield from comm.recv(root, tag)
    comm.trace_collective_exit("scatter")
    return data


def allgather(comm: CommHandle, value: Any) -> Generator:
    """Bruck allgather (⌈log2 P⌉ rounds) — MPICH's small-message
    algorithm; every rank returns the rank-ordered value list.

    Round ``k`` sends everything collected so far to ``rank - 2^k`` and
    receives from ``rank + 2^k``, doubling the collected set.  For
    non-power-of-two sizes the final round over-sends slightly (the
    dict merge absorbs duplicates), exactly like the classic algorithm's
    remainder step.
    """
    comm.trace_collective("allgather", value)
    size, rank = comm.size, comm.rank
    rounds = _ceil_log2(size)
    base_tag = comm.next_collective_tags(max(rounds, 1))
    collected = {rank: value}
    # Track the dict's wire size incrementally (8 bytes per int key plus
    # each value, measured once on arrival) instead of re-walking the
    # whole payload every round — the per-round size grows as 2^k.
    payload_bytes = 8 + wire_size(value)
    step = 1
    k = 0
    while step < size:
        dst = (rank - step) % size
        src = (rank + step) % size
        req = comm.isend(dict(collected), dst, base_tag + k,
                         nbytes=CONTAINER_OVERHEAD + payload_bytes)
        incoming = yield from comm.recv(src, base_tag + k)
        yield req.event
        for r, v in incoming.items():
            if r not in collected:
                collected[r] = v
                payload_bytes += 8 + wire_size(v)
        step <<= 1
        k += 1
    comm.trace_collective_exit("allgather")
    return [collected[i] for i in range(size)]


def allgather_ring(comm: CommHandle, value: Any) -> Generator:
    """Ring allgather (P-1 rounds) — MPICH's large-message algorithm,
    bandwidth-optimal without payload duplication.  Kept for workloads
    where per-rank payloads are large; semantics identical to
    :func:`allgather`."""
    comm.trace_collective("allgather_ring", value)
    size, rank = comm.size, comm.rank
    tag = comm.next_collective_tags(1)
    out: List[Any] = [None] * size
    out[rank] = value
    if size == 1:
        comm.trace_collective_exit("allgather_ring")
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    carry = value
    carry_owner = rank
    for _step in range(size - 1):
        req = comm.isend((carry_owner, carry), right, tag)
        src_owner, received = yield from comm.recv(left, tag)
        yield req.event
        out[src_owner] = received
        carry, carry_owner = received, src_owner
    comm.trace_collective_exit("allgather_ring")
    return out


def scan(comm: CommHandle, value: Any, op: Op) -> Generator:
    """Inclusive prefix reduction (``MPI_Scan``): rank ``r`` returns
    ``value_0 op value_1 op ... op value_r``.

    Recursive-doubling: round ``k`` exchanges partial prefixes with the
    rank ``2^k`` away; ⌈log2 P⌉ rounds.
    """
    comm.trace_collective("scan", value)
    size, rank = comm.size, comm.rank
    rounds = _ceil_log2(size)
    base_tag = comm.next_collective_tags(max(rounds, 1))
    result = value       # prefix including my own value
    carry = value        # combined value of my 2^k-neighbourhood
    step = 1
    k = 0
    while step < size:
        reqs = []
        if rank + step < size:
            reqs.append(comm.isend(carry, rank + step, base_tag + k))
        if rank - step >= 0:
            incoming = yield from comm.recv(rank - step, base_tag + k)
            # Everything arriving comes from strictly lower ranks.
            result = op(incoming, result)
            carry = op(incoming, carry)
            comm.note_reduce_step(op, rank - step)
        for req in reqs:
            yield req.event
        step <<= 1
        k += 1
    comm.trace_collective_exit("scan")
    return result


def exscan(comm: CommHandle, value: Any, op: Op) -> Generator:
    """Exclusive prefix reduction (``MPI_Exscan``): rank ``r`` returns
    the combination of ranks ``0..r-1`` (``None`` on rank 0)."""
    comm.trace_collective("exscan", value)
    size, rank = comm.size, comm.rank
    rounds = _ceil_log2(size)
    base_tag = comm.next_collective_tags(max(rounds, 1))
    below: Any = None    # combination of strictly lower ranks
    carry = value
    step = 1
    k = 0
    while step < size:
        reqs = []
        if rank + step < size:
            reqs.append(comm.isend(carry, rank + step, base_tag + k))
        if rank - step >= 0:
            incoming = yield from comm.recv(rank - step, base_tag + k)
            below = incoming if below is None else op(incoming, below)
            carry = op(incoming, carry)
            comm.note_reduce_step(op, rank - step)
        for req in reqs:
            yield req.event
        step <<= 1
        k += 1
    comm.trace_collective_exit("exscan")
    return below


def reduce_scatter_block(comm: CommHandle, values: Sequence[Any],
                         op: Op) -> Generator:
    """``MPI_Reduce_scatter_block``: element ``r`` of every rank's list
    is reduced and delivered to rank ``r``.

    Implemented as reduce-to-root + scatter (MPICH's small-message
    fallback); returns this rank's reduced element.
    """
    comm.trace_collective("reduce_scatter_block", values)
    size = comm.size
    if len(values) != size:
        raise MPIError(f"reduce_scatter needs exactly {size} values")
    combined = yield from reduce(
        comm,
        list(values),
        Op.create(lambda a, b: [op(x, y) for x, y in zip(a, b)],
                  commutative=op.commutative, name=f"ew:{op.name}"),
        root=0,
    )
    mine = yield from scatter(comm, combined, root=0)
    comm.trace_collective_exit("reduce_scatter_block")
    return mine


def alltoall(comm: CommHandle, values: Sequence[Any]) -> Generator:
    """Pairwise-exchange all-to-all; ``values[d]`` goes to rank ``d``.

    Payloads may differ in size per destination (the ``alltoallv``
    case).  Returns the list where element ``s`` came from rank ``s``.
    """
    comm.trace_collective("alltoall", values)
    size, rank = comm.size, comm.rank
    if len(values) != size:
        raise MPIError(f"alltoall needs exactly {size} payloads")
    tag = comm.next_collective_tags(1)
    out: List[Any] = [None] * size
    out[rank] = values[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        src = (rank - step) % size
        req = comm.isend(values[dest], dest, tag)
        out[src] = yield from comm.recv(src, tag)
        yield req.event
    comm.trace_collective_exit("alltoall")
    return out
