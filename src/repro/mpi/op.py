"""MPI reduction operators (``MPI_Op``), including user-defined ones.

The paper's object I/O passes the analysis as an ``MPI_Op`` created with
``MPI_Op_create`` (Figure 6, line 10); this module provides the same
vocabulary.  Operators combine *Python values* (numbers, numpy arrays,
tuples for the ``*LOC`` variants) element-wise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from ..errors import MPIError


@dataclass(frozen=True)
class Op:
    """A reduction operator.

    Parameters
    ----------
    name:
        Diagnostic label.
    func:
        Binary combiner ``func(a, b) -> combined``.  Must be associative;
        commutativity is advertised separately (tree reductions reorder
        operands only when ``commutative``).
    commutative:
        Whether operand order may be changed.
    """

    name: str
    func: Callable[[Any, Any], Any]
    commutative: bool = True

    def __call__(self, a: Any, b: Any) -> Any:
        return self.func(a, b)

    @staticmethod
    def create(func: Callable[[Any, Any], Any], commutative: bool = True,
               name: str = "user_op") -> "Op":
        """``MPI_Op_create``: wrap a user combiner function."""
        if not callable(func):
            raise MPIError(f"MPI_Op_create needs a callable, got {func!r}")
        return Op(name=name, func=func, commutative=commutative)


def _sum(a, b):
    return a + b


def _prod(a, b):
    return a * b


def _max(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b)


def _min(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b)


def _land(a, b):
    return bool(a) and bool(b)


def _lor(a, b):
    return bool(a) or bool(b)


def _band(a, b):
    return a & b


def _bor(a, b):
    return a | b


def _maxloc(a, b):
    """Operands are ``(value, location)`` pairs; ties pick the lower
    location, matching the MPI standard."""
    (va, la), (vb, lb) = a, b
    if va > vb or (va == vb and la <= lb):
        return a
    return b


def _minloc(a, b):
    (va, la), (vb, lb) = a, b
    if va < vb or (va == vb and la <= lb):
        return a
    return b


#: Arithmetic sum.
SUM = Op("MPI_SUM", _sum)
#: Arithmetic product.
PROD = Op("MPI_PROD", _prod)
#: Element-wise maximum.
MAX = Op("MPI_MAX", _max)
#: Element-wise minimum.
MIN = Op("MPI_MIN", _min)
#: Logical and / or.
LAND = Op("MPI_LAND", _land)
LOR = Op("MPI_LOR", _lor)
#: Bitwise and / or.
BAND = Op("MPI_BAND", _band)
BOR = Op("MPI_BOR", _bor)
#: Max/min with location, over ``(value, location)`` pairs.
MAXLOC = Op("MPI_MAXLOC", _maxloc)
MINLOC = Op("MPI_MINLOC", _minloc)

_BUILTINS = {op.name: op for op in
             (SUM, PROD, MAX, MIN, LAND, LOR, BAND, BOR, MAXLOC, MINLOC)}


def lookup(name: str) -> Op:
    """Fetch a built-in operator by its MPI name (e.g. ``"MPI_SUM"``)."""
    try:
        return _BUILTINS[name]
    except KeyError:
        raise MPIError(f"unknown built-in op {name!r}") from None
