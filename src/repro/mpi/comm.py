"""Point-to-point communication: communicator + per-rank handles.

One :class:`Communicator` object is shared by all ranks of a job and
holds the matching state (posted receives, unexpected messages).  Each
rank talks through its own :class:`CommHandle` — the analogue of
``MPI_COMM_WORLD`` as seen from one process.

Semantics (eager protocol with unlimited buffering):

* ``send`` charges the network transfer (holding the endpoint NICs) and
  completes when the message is delivered to the destination's matching
  engine; it never waits for a matching receive.
* ``recv`` matches by ``(source, tag)`` with MPI's FIFO per-pair
  ordering; ``ANY_SOURCE``/``ANY_TAG`` wildcards are supported.
* Nonblocking variants return a :class:`Request` the caller yields on.

Tags below :data:`MIN_RESERVED_TAG` are for users; collectives use the
reserved space with per-collective sequence numbers (see
:mod:`repro.mpi.collectives`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from ..check.flags import checks_enabled
from ..cluster import Machine
from ..errors import MPIError
from ..obs import metrics
from ..sim import Event, Kernel
from .wire import wire_size

#: Fixed bucket edges (bytes) of the ``mpi.msg_bytes`` histogram —
#: power-of-16 decades from tiny control messages to multi-MiB windows.
MSG_BYTES_EDGES = (64, 1024, 16384, 262144, 4194304)

#: Wildcard source for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1
#: First tag value reserved for internal (collective) traffic.
MIN_RESERVED_TAG = 1 << 20


@dataclass
class Message:
    """An in-flight or delivered message."""

    __slots__ = ("source", "dest", "tag", "data", "nbytes")

    source: int
    dest: int
    tag: int
    data: Any
    nbytes: int


@dataclass
class _PostedRecv:
    __slots__ = ("source", "tag", "event")

    source: int
    tag: int
    event: Event


class Request:
    """Handle for a nonblocking operation.

    Yield :attr:`event` (or use :meth:`wait`) inside a rank process to
    block until completion; for receives the event's value is the
    payload.  :meth:`wait` may be driven more than once; every wait
    after completion returns the same payload immediately.
    """

    __slots__ = ("event", "_posted_in", "_posted")

    def __init__(self, event: Event, posted_in: Optional[List["_PostedRecv"]] = None,
                 posted: Optional["_PostedRecv"] = None) -> None:
        self.event = event
        # Set only for still-unmatched receives: the posting list and
        # the entry itself, so cancel() can withdraw it.
        self._posted_in = posted_in
        self._posted = posted

    @property
    def complete(self) -> bool:
        """Whether the operation has finished."""
        return self.event.processed

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` withdrew this receive."""
        ev = self.event
        return ev.triggered and ev._ok is True and ev._value is _CANCELLED

    def cancel(self) -> bool:
        """Withdraw a not-yet-matched receive (``MPI_Cancel``).

        Returns True when the receive was withdrawn: the request
        completes immediately and waiting on it yields ``None``.
        Returns False when the operation already completed (or was
        already cancelled) — cancellation raced and lost, exactly like
        MPI's semantics.  Raises :class:`MPIError` for requests that are
        not cancellable (sends, collective-I/O requests): their effects
        are already in flight on other ranks.
        """
        if self.event.triggered:
            return False
        if self._posted is None:
            raise MPIError(
                "only a pending receive can be cancelled; send and "
                "collective requests are already visible to other ranks")
        try:
            self._posted_in.remove(self._posted)
        except ValueError:  # pragma: no cover - matched this instant
            return False
        self._posted = None
        self._posted_in = None
        self.event.succeed(_CANCELLED)
        return True

    def wait(self) -> Generator:
        """Generator: wait for completion, returning the payload.

        For receive requests the raw :class:`Message` envelope is
        unwrapped to its ``data``; send requests and cancelled receives
        return ``None``.
        """
        value = yield self.event
        if isinstance(value, Message):
            return value.data
        if value is _CANCELLED:
            return None
        return value


#: Sentinel payload of a cancelled receive (distinct from a None message).
_CANCELLED = object()


class Communicator:
    """Shared matching state for one group of ranks.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    machine:
        The machine providing the network and rank placement.
    nprocs:
        Number of ranks in the communicator.
    node_map:
        Optional explicit node index per rank.  ``None`` uses the
        machine's block placement (a world communicator); derived
        communicators from :meth:`CommHandle.split` pass the nodes
        their members actually live on.
    """

    _next_id = 0

    def __init__(self, kernel: Kernel, machine: Machine, nprocs: int,
                 node_map: Optional[List[int]] = None) -> None:
        if nprocs < 1:
            raise MPIError(f"communicator needs >= 1 rank, got {nprocs}")
        if node_map is not None and len(node_map) != nprocs:
            raise MPIError(
                f"node_map has {len(node_map)} entries for {nprocs} ranks"
            )
        self.kernel = kernel
        self.machine = machine
        self.nprocs = nprocs
        self.node_map = list(node_map) if node_map is not None else None
        Communicator._next_id += 1
        self.id = Communicator._next_id
        #: Sub-communicators created by split, keyed by member ranks so
        #: repeated splits producing the same group reuse one object and
        #: the registry stays bounded by the number of distinct groups.
        self._subcomms: Dict[Tuple[int, ...], "Communicator"] = {}
        # Lazily built node -> member world ranks table (ascending).
        self._node_groups: Optional[Dict[int, List[int]]] = None
        self._unexpected: List[Deque[Message]] = [deque() for _ in range(nprocs)]
        self._posted: List[List[_PostedRecv]] = [[] for _ in range(nprocs)]
        # Per-(source, dest) sequencing enforcing MPI's non-overtaking
        # guarantee: messages between a pair are delivered in send order
        # even if the underlying transfers complete out of order.
        self._pair_next_out: Dict[Tuple[int, int], int] = {}
        self._pair_next_in: Dict[Tuple[int, int], int] = {}
        # Held-back values are None for messages the fault injector
        # dropped after they occupied the wire (sequencing still moves).
        self._held_back: Dict[Tuple[int, int], Dict[int, Optional[Message]]] = {}
        #: Total messages and payload bytes sent (experiment accounting).
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Collective-protocol verifier (:mod:`repro.check.protocol`),
        #: attached when ``REPRO_CHECK`` is on at construction.  With it
        #: off (the default) each collective call pays one is-None test.
        self.sanitizer = None
        if checks_enabled():
            from ..check.protocol import CollectiveLedger
            self.sanitizer = CollectiveLedger(self.id, nprocs)
        #: Message-race tracker (:mod:`repro.check.races`), attached
        #: whenever the kernel carries the happens-before tracker —
        #: one source of truth, so a communicator is race-tracked iff
        #: its kernel is.  Detached (the default), each send/match
        #: site pays one is-None test.
        self.races = None
        if kernel._tracker is not None:
            from ..check.races import CommRaceTracker
            self.races = CommRaceTracker(kernel._tracker, self.id,
                                         nprocs, ANY_SOURCE, ANY_TAG)
        # Deadlock reports always include this communicator's pending
        # receives (zero cost until a deadlock is being diagnosed).
        kernel.watch_deadlocks(self)
        # Rank -> node lookup table (placement is fixed for the life of
        # the communicator; node_of is on the per-message hot path).
        self._node_of: List[int] = [
            self.node_map[r] if self.node_map is not None
            else machine.node_of_rank(r, nprocs)
            for r in range(nprocs)
        ]

    # -- helpers -----------------------------------------------------------
    def check_rank(self, rank: int) -> None:
        """Validate a rank id against this communicator."""
        if not 0 <= rank < self.nprocs:
            raise MPIError(f"rank {rank} outside [0, {self.nprocs})")

    def node_of(self, rank: int) -> int:
        """Node hosting ``rank``."""
        if 0 <= rank < self.nprocs:
            return self._node_of[rank]
        # Out of range: fall through for the canonical error.
        if self.node_map is not None:
            self.check_rank(rank)
            return self.node_map[rank]
        return self.machine.node_of_rank(rank, self.nprocs)

    def node_groups(self) -> Dict[int, List[int]]:
        """Node index -> member ranks (ascending), for occupied nodes.

        Built lazily from the placement table and cached — placement is
        fixed for the life of the communicator.  Callers must not
        mutate the returned lists.
        """
        if self._node_groups is None:
            groups: Dict[int, List[int]] = {}
            for r in range(self.nprocs):
                groups.setdefault(self._node_of[r], []).append(r)
            self._node_groups = groups
        return self._node_groups

    def node_leader(self, node: int) -> int:
        """Lowest rank placed on ``node`` (the two-level staging leader)."""
        return self.node_groups()[node][0]

    def handle(self, rank: int) -> "CommHandle":
        """The per-rank view of this communicator."""
        self.check_rank(rank)
        return CommHandle(self, rank)

    # -- matching engine -----------------------------------------------------
    @staticmethod
    def _matches(posted_source: int, posted_tag: int, msg: Message) -> bool:
        return ((posted_source == ANY_SOURCE or posted_source == msg.source)
                and (posted_tag == ANY_TAG or posted_tag == msg.tag))

    def _deliver(self, msg: Message) -> None:
        posted = self._posted[msg.dest]
        for i, pr in enumerate(posted):
            if self._matches(pr.source, pr.tag, msg):
                del posted[i]
                if self.races is not None:
                    self.races.note_match(msg, pr.source, pr.tag)
                pr.event.succeed(msg)
                return
        self._unexpected[msg.dest].append(msg)

    def _match_unexpected(self, dest: int, source: int, tag: int
                          ) -> Optional[Message]:
        queue = self._unexpected[dest]
        for i, msg in enumerate(queue):
            if self._matches(source, tag, msg):
                del queue[i]
                if self.races is not None:
                    self.races.note_match(msg, source, tag)
                return msg
        return None

    # -- transfer process ------------------------------------------------------
    def _send_proc(self, msg: Message, seq: int) -> Generator:
        src_node = self.node_of(msg.source)
        dst_node = self.node_of(msg.dest)
        yield from self.machine.network.transfer(src_node, dst_node, msg.nbytes)
        dropped = False
        faults = self.machine.faults
        if faults is not None:
            dropped, delay = faults.message_decision(msg)
            if dropped and self.races is not None:
                self.races.note_drop(msg)
            if delay > 0:
                yield self.kernel.timeout(delay)
            if not dropped and faults.plan.corrupt_msg_rate:
                # In-transit bit flip on the delivered copy; the sender's
                # object is untouched, so a re-send draws a fresh decision
                # (the repair round uses a fresh tag).
                msg.data = faults.corrupt_message(msg)
        pair = (msg.source, msg.dest)
        expected = self._pair_next_in.get(pair, 0)
        if seq != expected:
            # Overtook an earlier message of the same pair: hold it back.
            # A dropped message is held as None so pair sequencing still
            # advances past it — otherwise every later message of this
            # pair would wait forever on a delivery that never happens.
            self._held_back.setdefault(pair, {})[seq] = (
                None if dropped else msg)
            return None
        if not dropped:
            self._deliver(msg)
        expected += 1
        held = self._held_back.get(pair)
        while held and expected in held:
            held_msg = held.pop(expected)
            if held_msg is not None:
                self._deliver(held_msg)
            expected += 1
        self._pair_next_in[pair] = expected
        return None

    def idle_ranks(self) -> int:  # pragma: no cover - diagnostics
        """Ranks with posted-but-unmatched receives (debug aid)."""
        return sum(1 for p in self._posted if p)

    def describe_blocked(self) -> List[str]:
        """Per-rank blocked-state lines for deadlock reports: pending
        receives with source/tag, the wait-for cycle when one exists,
        and (with the sanitizer on) each rank's last collective."""
        from ..check.protocol import describe_blocked
        return describe_blocked(self, MIN_RESERVED_TAG)


@dataclass(frozen=True)
class NodeSplit:
    """One rank's view of the two-level (node-aware) communicator pair.

    Produced by :meth:`CommHandle.node_split`.  ``node_comm`` contains
    the ranks sharing this rank's node, ordered by world rank (so its
    rank 0 is the leader); ``leader_comm`` contains one leader per
    occupied node and is ``None`` on non-leader ranks (the
    ``MPI_UNDEFINED`` side of the split).
    """

    node_comm: "CommHandle"
    leader_comm: Optional["CommHandle"]
    #: World rank of this node's leader (lowest rank on the node).
    leader: int
    #: World ranks placed on this node, ascending.
    node_ranks: List[int]
    #: Node index this rank lives on.
    node_index: int

    @property
    def is_leader(self) -> bool:
        """Whether this rank is its node's staging leader."""
        return self.leader_comm is not None


class CommHandle:
    """One rank's endpoint of a :class:`Communicator`.

    All communication methods are generators: call them with
    ``yield from`` inside a rank process (or wrap in
    ``kernel.process`` for explicit concurrency).
    """

    def __init__(self, comm: Communicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank
        #: Per-rank collective sequence number; advances identically on
        #: every rank because collectives are called in program order.
        self._coll_seq = 0
        #: Cached :meth:`node_split` result (built on first use).
        self._node_split: Optional["NodeSplit"] = None

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.comm.nprocs

    @property
    def kernel(self) -> Kernel:
        """The owning simulation kernel."""
        return self.comm.kernel

    # -- sends -----------------------------------------------------------
    def isend(self, data: Any, dest: int, tag: int = 0,
              nbytes: Optional[int] = None) -> Request:
        """Start a nonblocking send; returns a :class:`Request`."""
        self.comm.check_rank(dest)
        if tag < 0:
            raise MPIError(f"negative tag {tag}")
        size = wire_size(data) if nbytes is None else int(nbytes)
        msg = Message(self.rank, dest, tag, data, size)
        races = self.comm.races
        if races is not None:
            races.note_send(msg)
        self.comm.messages_sent += 1
        self.comm.bytes_sent += size
        m = metrics.current()
        if m is not None:
            m.count("mpi.messages")
            m.count("mpi.wire_bytes", size)
            m.observe("mpi.msg_bytes", size, MSG_BYTES_EDGES)
        pair = (self.rank, dest)
        seq = self.comm._pair_next_out.get(pair, 0)
        self.comm._pair_next_out[pair] = seq + 1
        proc = self.kernel.process(self.comm._send_proc(msg, seq),
                                   name="send")
        return Request(proc)

    def send(self, data: Any, dest: int, tag: int = 0,
             nbytes: Optional[int] = None) -> Generator:
        """Blocking send (completes when the message is delivered)."""
        req = self.isend(data, dest, tag, nbytes)
        yield req.event
        return None

    # -- receives ----------------------------------------------------------
    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Post a nonblocking receive; the request's value is the payload."""
        if source != ANY_SOURCE:
            self.comm.check_rank(source)
        ev = self.kernel.event(name="recv")
        msg = self.comm._match_unexpected(self.rank, source, tag)
        if msg is not None:
            ev.succeed(msg)
            return Request(ev)
        posted = _PostedRecv(source, tag, ev)
        posted_in = self.comm._posted[self.rank]
        posted_in.append(posted)
        return Request(ev, posted_in, posted)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns the payload."""
        req = self.irecv(source, tag)
        msg = yield req.event
        return msg.data

    def recv_msg(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive returning the full :class:`Message` envelope
        (source/tag/nbytes included) — the MPI_Status-bearing variant."""
        req = self.irecv(source, tag)
        msg = yield req.event
        return msg

    # -- communicator management ---------------------------------------------
    def split(self, color: Any, key: int = 0) -> Generator:
        """``MPI_Comm_split``: partition the communicator by ``color``.

        Collective over all ranks.  Returns a :class:`CommHandle` on the
        new communicator holding the ranks that passed the same color,
        ordered by ``(key, old rank)`` — or ``None`` for ranks passing
        ``color=None`` (the ``MPI_UNDEFINED`` case).
        """
        from . import collectives as coll
        entries = yield from coll.allgather(self, (color, key, self.rank))
        if color is None:
            return None
        members = sorted((k, r) for c, k, r in entries if c == color)
        ranks = [r for _k, r in members]
        newrank = ranks.index(self.rank)
        registry = self.comm._subcomms
        # Keyed by membership, not by (call site, color): two splits
        # producing the same ordered group share one Communicator, so a
        # long sweep that splits every iteration cannot grow the
        # registry past the number of distinct groups.  Reuse is safe
        # because every collective drains fully before returning and
        # each call gets fresh handles whose tag sequence restarts
        # identically on all members.
        group_key = tuple(ranks)
        if group_key not in registry:
            node_map = [self.comm.node_of(r) for r in ranks]
            registry[group_key] = Communicator(
                self.kernel, self.comm.machine, len(ranks),
                node_map=node_map)
        return registry[group_key].handle(newrank)

    def node_split(self) -> Generator:
        """Node-aware sub-communicators for two-level aggregation.

        Collective over all ranks (two :meth:`split` calls under the
        hood).  Returns a :class:`NodeSplit`: an intra-node communicator
        whose rank 0 is this node's leader (its lowest world rank), and
        a leaders-only communicator (``None`` on non-leader ranks).  The
        result is cached on the handle, so repeated two-level operations
        in one job pay the split allgathers once; after the first call
        it returns without yielding.
        """
        if self._node_split is not None:
            return self._node_split
        comm = self.comm
        my_node = comm.node_of(self.rank)
        node_ranks = list(comm.node_groups()[my_node])
        leader = node_ranks[0]
        # key=0 orders the intra-node comm by world rank, putting the
        # leader at intra-node rank 0 by construction.
        node_comm = yield from self.split(my_node)
        leader_comm = yield from self.split(0 if self.rank == leader else None)
        self._node_split = NodeSplit(
            node_comm=node_comm, leader_comm=leader_comm, leader=leader,
            node_ranks=node_ranks, node_index=my_node)
        return self._node_split

    # -- misc ---------------------------------------------------------------
    def trace_collective(self, op: str, payload: Any = None) -> None:
        """Report one collective call site to the protocol verifier.

        Called by every function in :mod:`repro.mpi.collectives` on
        entry.  With the sanitizer detached (the default) this is a
        single attribute test; with it attached the ledger validates
        op name, per-comm sequence number and payload signature against
        the other ranks and raises :class:`MPIError` on divergence.
        """
        sanitizer = self.comm.sanitizer
        if sanitizer is not None:
            sanitizer.record(self.rank, op, payload)
        races = self.comm.races
        if races is not None:
            races.note_collective(self.rank, op)
        m = metrics.current()
        if m is not None:
            m.count(f"mpi.coll.{op}")

    def trace_collective_exit(self, op: str) -> None:
        """Report that this rank returned from collective ``op``.

        The race tracker uses entry/exit to attribute findings to the
        collective they occurred in; the happens-before edges of a
        collective are those of its constituent point-to-point
        messages, recorded through the event graph.
        """
        races = self.comm.races
        if races is not None:
            races.note_collective_exit(self.rank, op)

    def note_reduce_step(self, op: Any, src: int) -> None:
        """Report one reduction combine step (this rank folded in a
        value received from ``src``) to the race tracker, which flags
        non-commutative operand orders downstream of a message race."""
        races = self.comm.races
        if races is not None:
            races.note_reduce_step(op, self.rank, src)

    def next_collective_tags(self, n_tags: int = 1) -> int:
        """Reserve ``n_tags`` consecutive internal tags for one collective
        call; returns the first tag.  Must be invoked in identical order
        on every rank (SPMD discipline), as in a real MPI library."""
        base = MIN_RESERVED_TAG + self._coll_seq
        self._coll_seq += n_tags
        return base

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CommHandle rank={self.rank}/{self.size} comm={self.comm.id}>"
