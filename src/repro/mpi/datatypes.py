"""MPI derived datatypes and their flattening.

ROMIO drives two-phase I/O from *flattened* datatypes — lists of
``(offset, length)`` runs describing one type instance.  This module
implements the constructors the paper's workloads rely on
(``MPI_Type_contiguous``, ``MPI_Type_vector``,
``MPI_Type_create_subarray``) plus flattening, so the MPI-IO file-view
path mirrors the real stack.

Offsets in a flattened type are **relative to the type's origin**;
:meth:`Datatype.flatten` returns a
:class:`~repro.dataspace.flatten.RunList`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..dataspace import DatasetSpec, RunList, Subarray, flatten_subarray
from ..errors import MPIError


class Datatype:
    """Base class for MPI datatypes."""

    @property
    def size(self) -> int:
        """Bytes of actual data in one instance (sum of run lengths)."""
        raise NotImplementedError

    @property
    def extent(self) -> int:
        """Span in bytes from the first to one-past-the-last byte the
        type touches (MPI extent, without resizing)."""
        raise NotImplementedError

    def flatten(self) -> RunList:
        """Runs of one type instance, offsets relative to its origin."""
        raise NotImplementedError

    def tiled(self, count: int) -> RunList:
        """Runs of ``count`` consecutive instances (each shifted by one
        extent) — what an MPI-IO read of ``count`` items accesses."""
        if count < 0:
            raise MPIError(f"negative count {count}")
        base = self.flatten()
        if count == 0 or not len(base):
            return RunList.empty()
        ext = self.extent
        offs = np.concatenate([base.offsets + k * ext for k in range(count)])
        lens = np.tile(base.lengths, count)
        order = np.argsort(offs, kind="stable")
        return RunList(offs[order], lens[order]).coalesce()


class Basic(Datatype):
    """A basic type wrapping a numpy dtype (MPI_FLOAT, MPI_DOUBLE...)."""

    def __init__(self, dtype) -> None:
        self.dtype = np.dtype(dtype)

    @property
    def size(self) -> int:
        return self.dtype.itemsize

    @property
    def extent(self) -> int:
        return self.dtype.itemsize

    def flatten(self) -> RunList:
        return RunList.single(0, self.dtype.itemsize)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Basic({self.dtype})"


#: Common basic types, named as in MPI.
BYTE = Basic(np.uint8)
INT = Basic(np.int32)
LONG = Basic(np.int64)
FLOAT = Basic(np.float32)
DOUBLE = Basic(np.float64)


class Contiguous(Datatype):
    """``MPI_Type_contiguous``: ``count`` back-to-back base instances."""

    def __init__(self, count: int, base: Datatype) -> None:
        if count < 0:
            raise MPIError(f"negative count {count}")
        self.count = count
        self.base = base

    @property
    def size(self) -> int:
        return self.count * self.base.size

    @property
    def extent(self) -> int:
        return self.count * self.base.extent

    def flatten(self) -> RunList:
        return self.base.tiled(self.count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Contiguous({self.count}, {self.base!r})"


class Vector(Datatype):
    """``MPI_Type_vector``: ``count`` blocks of ``blocklength`` base
    instances, block starts ``stride`` base-extents apart."""

    def __init__(self, count: int, blocklength: int, stride: int,
                 base: Datatype) -> None:
        if count < 0 or blocklength < 0:
            raise MPIError(f"negative vector geometry ({count}, {blocklength})")
        if count > 1 and stride < blocklength:
            raise MPIError(
                f"stride {stride} < blocklength {blocklength} would overlap"
            )
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base

    @property
    def size(self) -> int:
        return self.count * self.blocklength * self.base.size

    @property
    def extent(self) -> int:
        if self.count == 0 or self.blocklength == 0:
            return 0
        be = self.base.extent
        return ((self.count - 1) * self.stride + self.blocklength) * be

    def flatten(self) -> RunList:
        be = self.base.extent
        block = self.base.tiled(self.blocklength)
        pairs = []
        for k in range(self.count):
            start = k * self.stride * be
            pairs.extend((start + o, n) for o, n in block)
        return RunList.from_pairs(pairs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Vector({self.count}, {self.blocklength}, "
                f"{self.stride}, {self.base!r})")


class SubarrayType(Datatype):
    """``MPI_Type_create_subarray`` (C order): a hyperslab of an N-D array.

    The extent is the whole array (as in MPI), making it directly usable
    as an MPI-IO file view for one variable.
    """

    def __init__(self, sizes: Sequence[int], subsizes: Sequence[int],
                 starts: Sequence[int], base: Datatype) -> None:
        if not isinstance(base, Basic):
            raise MPIError("subarray base must be a basic type")
        self.sizes = tuple(int(s) for s in sizes)
        self.subsizes = tuple(int(s) for s in subsizes)
        self.starts = tuple(int(s) for s in starts)
        if not (len(self.sizes) == len(self.subsizes) == len(self.starts)):
            raise MPIError("sizes/subsizes/starts rank mismatch")
        self.base = base
        # Validation via the dataspace layer.
        self._spec = DatasetSpec(self.sizes, base.dtype)
        self._sub = Subarray(self.starts, self.subsizes)
        self._sub.validate(self._spec)

    @property
    def size(self) -> int:
        return self._sub.n_elements * self.base.size

    @property
    def extent(self) -> int:
        return self._spec.nbytes

    def flatten(self) -> RunList:
        return flatten_subarray(self._spec, self._sub)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SubarrayType(sizes={self.sizes}, subsizes={self.subsizes}, "
                f"starts={self.starts}, base={self.base!r})")
