"""End-to-end data integrity: checksummed storage, wire and reduce paths.

**Role.** Detect and repair *silent* corruption — the fault class
PR 3's fail-stop machinery cannot see.  Files carry per-stripe-block
CRC32C digests verified on every read; data-plane window messages carry
payload digests checked on receive; partial results carry provenance
digests re-verified at reduce time.  Detection feeds the existing
recovery machinery (retry for storage, round re-serve for the wire), so
a bit flip costs time and wire bytes, never correctness.

**Paper mapping.** The paper's headline claim is that computing inside
the aggregators yields the *same answer* as post-I/O analysis; this
package is what makes that claim hold on a machine whose disks and
links can lie.  Related work treats wire/storage fidelity as a
first-class concern (C-Coll bounds the error its lossy collectives may
introduce); here the bound is exact: every corruption is caught or the
run fails loudly.

Layout: :mod:`~repro.integrity.digest` computes (CRC32C + canonical
payload digests), :mod:`~repro.integrity.corrupt` flips bits
deterministically (the injector's mutation primitive), and
:mod:`~repro.integrity.manager` attaches verification to a machine the
same way :class:`~repro.faults.FaultInjector` attaches injection.
"""

from .corrupt import corrupt_object, flip_bit
from .digest import DIGEST_NBYTES, crc32c, partial_digest, payload_digest
from .manager import IntegrityConfig, IntegrityManager

__all__ = [
    "DIGEST_NBYTES",
    "crc32c",
    "payload_digest",
    "partial_digest",
    "flip_bit",
    "corrupt_object",
    "IntegrityConfig",
    "IntegrityManager",
]
