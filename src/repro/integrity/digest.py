"""CRC32C digests for stored blocks and wire payloads.

Two digest primitives back the end-to-end integrity layer:

* :func:`crc32c` — the Castagnoli CRC (polynomial ``0x1EDC6F41``,
  reflected ``0x82F63B78``), the checksum real storage stacks use for
  silent-corruption detection (iSCSI, ext4 metadata, Btrfs, RDMA).
  Implemented slice-by-8 in pure Python (the container bakes no
  C extension for it) with incremental chaining, so per-stripe-block
  digests and stitched partial-block verification share one code path.
* :func:`payload_digest` — a canonical, type-tagged walk over the
  message payloads the simulator actually ships (ndarrays, bytes,
  scalars, tuples/lists/dicts, frozen dataclasses), folded through
  :func:`crc32c` into a fixed 4-byte digest.  Canonicalisation makes
  the digest a pure function of payload *content*: sender and receiver
  compute identical digests without sharing any serialisation state.

Dataclass fields named ``digest`` are excluded from the walk, so
stamping a :class:`~repro.core.metadata.PartialResult` with its own
provenance digest does not change what the digest covers —
``partial_digest(stamped) == partial_digest(unstamped)``.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, List

import numpy as np

#: Reflected CRC32C (Castagnoli) polynomial.
_POLY = 0x82F63B78

#: Bytes of one digest on the wire (a big-endian CRC32C).
DIGEST_NBYTES = 4


def _make_tables() -> List[List[int]]:
    tables = [[0] * 256 for _ in range(8)]
    t0 = tables[0]
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ (_POLY if c & 1 else 0)
        t0[n] = c
    for n in range(256):
        c = t0[n]
        for k in range(1, 8):
            c = t0[c & 0xFF] ^ (c >> 8)
            tables[k][n] = c
    return tables


_T = _make_tables()


def crc32c(data: Any, crc: int = 0) -> int:
    """CRC32C of ``data`` (bytes-like), chainable via ``crc``.

    ``crc32c(b, crc32c(a))`` equals ``crc32c(a + b)``, which is how
    partial-block verification stitches pristine and served bytes
    without materialising the full block.
    """
    if not isinstance(data, (bytes, bytearray)):
        data = bytes(data)
    t0, t1, t2, t3, t4, t5, t6, t7 = _T
    crc ^= 0xFFFFFFFF
    i, n = 0, len(data)
    unpack = struct.unpack_from
    while n - i >= 8:
        lo, hi = unpack("<II", data, i)
        crc ^= lo
        crc = (t7[crc & 0xFF] ^ t6[(crc >> 8) & 0xFF]
               ^ t5[(crc >> 16) & 0xFF] ^ t4[(crc >> 24) & 0xFF]
               ^ t3[hi & 0xFF] ^ t2[(hi >> 8) & 0xFF]
               ^ t1[(hi >> 16) & 0xFF] ^ t0[(hi >> 24) & 0xFF])
        i += 8
    while i < n:
        crc = t0[(crc ^ data[i]) & 0xFF] ^ (crc >> 8)
        i += 1
    return crc ^ 0xFFFFFFFF


def _walk(obj: Any, crc: int) -> int:
    """Fold one payload node into the running CRC, type-tagged so that
    e.g. ``0`` , ``0.0``, ``b""`` and ``()`` all digest differently."""
    if obj is None:
        return crc32c(b"N", crc)
    if isinstance(obj, (bool, np.bool_)):
        return crc32c(b"t" if obj else b"f", crc)
    if isinstance(obj, (int, np.integer)):
        return crc32c(b"i%d;" % int(obj), crc)
    if isinstance(obj, (float, np.floating)):
        return crc32c(b"d" + struct.pack("<d", float(obj)), crc)
    if isinstance(obj, np.ndarray):
        header = f"a{obj.dtype.str}{obj.shape};".encode("ascii")
        return crc32c(np.ascontiguousarray(obj).view(np.uint8).reshape(-1),
                      crc32c(header, crc))
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return crc32c(obj, crc32c(b"b%d;" % len(obj), crc))
    if isinstance(obj, str):
        raw = obj.encode("utf-8")
        return crc32c(raw, crc32c(b"s%d;" % len(raw), crc))
    if isinstance(obj, (tuple, list)):
        crc = crc32c(b"T%d;" % len(obj), crc)
        for item in obj:
            crc = _walk(item, crc)
        return crc
    if isinstance(obj, dict):
        crc = crc32c(b"D%d;" % len(obj), crc)
        for key in sorted(obj, key=repr):
            crc = _walk(key, crc)
            crc = _walk(obj[key], crc)
        return crc
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = [f for f in dataclasses.fields(obj) if f.name != "digest"]
        crc = crc32c(f"C{type(obj).__name__}{len(fields)};".encode("ascii"),
                     crc)
        for f in fields:
            crc = _walk(getattr(obj, f.name), crc)
        return crc
    # Last resort: digest the repr (deterministic for the simple value
    # objects the simulator ships; never reached by the hot payloads).
    return crc32c(b"r" + repr(obj).encode("utf-8", "backslashreplace"), crc)


def payload_digest(payload: Any) -> bytes:
    """The canonical 4-byte digest of one wire payload."""
    return _walk(payload, 0).to_bytes(DIGEST_NBYTES, "big")


def partial_digest(partial: Any) -> bytes:
    """Provenance digest of one partial result: covers destination,
    iteration, logical blocks and payload — everything except any
    already-stamped ``digest`` field (see module docstring)."""
    return payload_digest(partial)
