"""Deterministic single-bit corruption of payloads and byte extents.

The fault plan decides *whether* and *where* (as uniform draws in
``[0, 1)``); this module turns those draws into an actual flipped bit:

* :func:`flip_bit` — flip one bit of a bytes-like extent (the OST
  storage path), copy-on-write so read-only memoryviews over cached
  source arrays are never mutated in place.
* :func:`corrupt_object` — flip one bit inside a structured wire
  payload.  Only *data-bearing* leaves are candidates (ndarrays,
  bytes, floats): ints, strings, dict keys and dataclass fields named
  ``digest`` are never touched, so a corrupted message keeps its
  protocol identity (window keys, ranks, tags stay parseable) and a
  stamped provenance digest is never the thing that breaks — silent
  corruption mangles *values*, which is exactly what the checksums
  must catch.

Everything is copy-on-corrupt: payload buffers may alias simulator
state (window arrays shared between destinations, cached procedural
blocks), and corruption must poison one delivery, not the universe.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, List, Tuple

import numpy as np

#: Path-step tags for rebuilding a corrupted container.
_SEQ, _KEY, _FIELD = "seq", "key", "field"


def flip_bit(data: Any, bit: int) -> bytes:
    """A copy of bytes-like ``data`` with bit ``bit`` flipped
    (bit 0 = LSB of byte 0)."""
    buf = bytearray(data)
    buf[bit >> 3] ^= 1 << (bit & 7)
    return bytes(buf)


def _collect_leaves(obj: Any, path: Tuple, out: List[Tuple[Tuple, Any]]
                    ) -> None:
    if obj is None or isinstance(obj, (bool, np.bool_)):
        return
    if isinstance(obj, np.ndarray):
        if obj.nbytes:
            out.append((path, obj))
        return
    if isinstance(obj, (bytes, bytearray, memoryview)):
        if len(obj):
            out.append((path, obj))
        return
    if isinstance(obj, (float, np.floating)):
        out.append((path, obj))
        return
    if isinstance(obj, (tuple, list)):
        for i, item in enumerate(obj):
            _collect_leaves(item, path + ((_SEQ, i),), out)
        return
    if isinstance(obj, dict):
        for key, value in obj.items():
            _collect_leaves(value, path + ((_KEY, key),), out)
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclasses.fields(obj):
            if f.name == "digest":
                continue
            _collect_leaves(getattr(obj, f.name), path + ((_FIELD, f.name),),
                            out)
        return
    # ints, strings and anything else carry protocol identity, not data.


def _flip_leaf(leaf: Any, u_bit: float) -> Tuple[Any, int, int]:
    """``(corrupted copy, bit index, total bits)`` for one leaf."""
    if isinstance(leaf, np.ndarray):
        nbits = leaf.nbytes * 8
        bit = min(int(u_bit * nbits), nbits - 1)
        arr = leaf.copy()
        flat = arr.view(np.uint8).reshape(-1)
        flat[bit >> 3] ^= 1 << (bit & 7)
        return arr, bit, nbits
    if isinstance(leaf, (bytes, bytearray, memoryview)):
        nbits = len(leaf) * 8
        bit = min(int(u_bit * nbits), nbits - 1)
        flipped = flip_bit(leaf, bit)
        return (bytearray(flipped) if isinstance(leaf, bytearray)
                else flipped), bit, nbits
    # float / np.floating: flip one bit of the IEEE-754 representation.
    nbits = 64
    bit = min(int(u_bit * nbits), nbits - 1)
    raw = flip_bit(struct.pack("<d", float(leaf)), bit)
    return struct.unpack("<d", raw)[0], bit, nbits


def _rebuild(obj: Any, path: Tuple, new_leaf: Any) -> Any:
    if not path:
        return new_leaf
    (kind, key), rest = path[0], path[1:]
    if kind == _SEQ:
        items = list(obj)
        items[key] = _rebuild(items[key], rest, new_leaf)
        return tuple(items) if isinstance(obj, tuple) else items
    if kind == _KEY:
        copy = dict(obj)
        copy[key] = _rebuild(copy[key], rest, new_leaf)
        return copy
    return dataclasses.replace(
        obj, **{key: _rebuild(getattr(obj, key), rest, new_leaf)})


def _describe(path: Tuple, leaf: Any) -> str:
    loc = "".join(f".{k}" if kind == _FIELD else f"[{k!r}]"
                  for kind, k in path) or "payload"
    return f"{loc} ({type(leaf).__name__})"


def corrupt_object(obj: Any, u_leaf: float, u_bit: float
                   ) -> Tuple[Any, str]:
    """Flip one bit of one data-bearing leaf of ``obj``.

    ``u_leaf`` selects the leaf, ``u_bit`` the bit within it (both
    uniform draws from the fault plan).  Returns ``(corrupted copy,
    description)``; when ``obj`` carries no corruptible data at all,
    returns ``(obj, "")`` unchanged — the injector then records
    nothing, keeping inject records matched to observable corruption.
    """
    leaves: List[Tuple[Tuple, Any]] = []
    _collect_leaves(obj, (), leaves)
    if not leaves:
        return obj, ""
    index = min(int(u_leaf * len(leaves)), len(leaves) - 1)
    path, leaf = leaves[index]
    new_leaf, bit, nbits = _flip_leaf(leaf, u_bit)
    desc = f"bit {bit}/{nbits} of {_describe(path, leaf)} flipped"
    return _rebuild(obj, path, new_leaf), desc
