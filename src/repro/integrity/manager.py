"""Attachable end-to-end integrity checking for one simulated machine.

Mirror of :class:`~repro.faults.injector.FaultInjector`: integrity is
an opt-in runtime attachment (``IntegrityManager.attach(machine)``), so
the fault-free hot path — every existing figure — pays nothing when it
is off.  Attached, it wires three verification points:

* **storage** — every :meth:`repro.pfs.LustreFS.read` recomputes the
  per-stripe-block CRC32C digests of the served extent against the
  digests stored on the :class:`~repro.pfs.PFSFile` at create time
  (partial boundary blocks are stitched with pristine source bytes),
  raising :class:`~repro.errors.IntegrityError` on mismatch;
* **wire** — the resilient exchange stamps every data-plane window
  message with a :func:`~repro.integrity.digest.payload_digest`
  checked on receive; a mismatch turns the window into a *missed*
  window (re-served next round) without suspecting the live server;
* **reduce** — partial results are stamped with a provenance digest at
  map time and re-verified before combining, the last line of defence
  against corruption that slipped past the wire check.

Detections are logged as ``detect:*`` :class:`~repro.faults.FaultRecord`
entries on the machine's injector when one is attached (so inject,
detect and recover records interleave in one chronological ledger and
one Chrome trace), falling back to a local record list otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from ..errors import IntegrityError
from ..obs import metrics
from .digest import crc32c, partial_digest

#: Counter keys reported by :meth:`IntegrityManager.stats`.
_DETECT_KINDS = ("ost", "msg", "partial")


@dataclass(frozen=True)
class IntegrityConfig:
    """Which verification points are active.

    All three default on; experiments flip individual layers to price
    them separately (Figure 15 measures the whole stack).
    """

    #: Verify served extents against stored block digests in
    #: :meth:`repro.pfs.LustreFS.read`.
    verify_reads: bool = True
    #: Stamp + check data-plane window messages in the resilient
    #: exchange.
    wire_digests: bool = True
    #: Stamp partial results with provenance digests and re-verify at
    #: combine/construct time.
    verify_reduce: bool = True


class IntegrityManager:
    """Runtime integrity verification for one simulated machine."""

    def __init__(self, machine, config: Optional[IntegrityConfig] = None
                 ) -> None:
        self.machine = machine
        self.config = config or IntegrityConfig()
        #: Fallback detection log when no injector is attached.
        self.records: List[Any] = []
        #: Stripe blocks digested at create/refresh time.
        self.blocks_digested = 0
        #: Stripe blocks verified on the read path.
        self.blocks_verified = 0
        #: Partial results whose provenance digest was re-checked.
        self.partials_verified = 0
        #: Detections by kind (``ost`` / ``msg`` / ``partial``).
        self.detections = {kind: 0 for kind in _DETECT_KINDS}

    # -- wiring ------------------------------------------------------------
    @classmethod
    def attach(cls, machine, config: Optional[IntegrityConfig] = None
               ) -> "IntegrityManager":
        """Create a manager, wire it into ``machine`` and its file
        system, and digest every already-registered file."""
        manager = cls(machine, config)
        machine.integrity = manager
        machine.fs.integrity = manager
        for file in machine.fs._files.values():
            manager.ensure_digests(file)
        return manager

    @staticmethod
    def detach(machine) -> None:
        """Remove integrity checking from ``machine`` (stored file
        digests survive; they are inert without a manager)."""
        machine.integrity = None
        machine.fs.integrity = None

    # -- logging -----------------------------------------------------------
    def _log(self, kind: str, location: str, detail: str) -> None:
        faults = getattr(self.machine, "faults", None)
        if faults is not None:
            # FaultInjector.record also feeds the faults.* counters.
            faults.record(kind, location, detail)
            return
        from ..faults.injector import FaultRecord
        self.records.append(FaultRecord(self.machine.kernel.now, kind,
                                        location, detail))
        m = metrics.current()
        if m is not None:
            m.count(f"faults.{kind}")

    # -- storage path ------------------------------------------------------
    def ensure_digests(self, file) -> None:
        """Compute ``file``'s per-stripe-block digests if absent."""
        if file.block_digests is None:
            digested = file.compute_digests()
            self.blocks_digested += digested
            m = metrics.current()
            if m is not None:
                m.count("integrity.blocks_digested", digested)

    def refresh_digests(self, file, offset: int, nbytes: int) -> None:
        """Re-digest the blocks an in-place write touched."""
        if file.block_digests is not None:
            digested = file.refresh_digests(offset, nbytes)
            self.blocks_digested += digested
            m = metrics.current()
            if m is not None:
                m.count("integrity.blocks_digested", digested)

    def verify_read(self, file, offset: int, data) -> None:
        """Verify one served extent against ``file``'s block digests.

        Boundary blocks only partially covered by the extent are
        stitched with pristine bytes read straight from the source
        (corruption is injected on the *served copy*, never the
        source), so every digest comparison covers a full block.
        Raises :class:`~repro.errors.IntegrityError` naming the failed
        blocks and their OSTs; every failed block is also logged as a
        ``detect:ost-corrupt`` record.
        """
        nbytes = len(data)
        if nbytes == 0:
            return
        self.ensure_digests(file)
        block_size = file.digest_block
        view = memoryview(data)
        end = offset + nbytes
        bad = []
        verified_before = self.blocks_verified
        for b in range((offset // block_size), ((end - 1) // block_size) + 1):
            b_lo = b * block_size
            b_hi = min(b_lo + block_size, file.size)
            lo = max(offset, b_lo)
            hi = min(end, b_hi)
            crc = 0
            if lo > b_lo:
                crc = crc32c(file.source.read(b_lo, lo - b_lo), crc)
            crc = crc32c(view[lo - offset:hi - offset], crc)
            if hi < b_hi:
                crc = crc32c(file.source.read(hi, b_hi - hi), crc)
            self.blocks_verified += 1
            if crc != file.block_digests[b]:
                bad.append((b, file.layout.ost_of(b_lo)))
        m = metrics.current()
        if m is not None:
            m.count("integrity.blocks_verified",
                    self.blocks_verified - verified_before)
        if not bad:
            return
        self.detections["ost"] += len(bad)
        for b, ost in bad:
            self._log("detect:ost-corrupt", f"ost{ost}",
                      f"block {b} of {file.name!r} failed CRC32C over "
                      f"extent [{offset}, {end})")
        blocks = ", ".join(f"block {b} (OST {ost})" for b, ost in bad)
        raise IntegrityError(
            f"checksum mismatch reading [{offset}, {end}) of "
            f"{file.name!r}: {blocks}")

    # -- wire path ---------------------------------------------------------
    def wire_detection(self, rank: int, source: int, key, tag: int) -> None:
        """Log one receive-side payload-digest mismatch (the resilient
        exchange then treats the window as missed and re-serves it)."""
        self.detections["msg"] += 1
        self._log("detect:msg-corrupt", f"{source}->{rank}",
                  f"window {key} payload failed its wire digest on tag "
                  f"{tag}; NACKed for re-serve")

    # -- reduce path -------------------------------------------------------
    def verify_partials(self, ctx, partials, where: str) -> None:
        """Re-verify stamped provenance digests before combining.

        Partials without a digest (produced with integrity off, or
        self-served before stamping) are skipped.  A mismatch here
        means corruption slipped past the wire check — there is no
        repair path this late, so it raises.
        """
        if not self.config.verify_reduce:
            return
        for p in partials:
            if p is None or getattr(p, "digest", None) is None:
                continue
            self.partials_verified += 1
            m = metrics.current()
            if m is not None:
                m.count("integrity.partials_verified")
            if partial_digest(p) != p.digest:
                self.detections["partial"] += 1
                self._log("detect:partial-corrupt", f"rank{ctx.rank}",
                          f"partial for rank {p.dest_rank} iteration "
                          f"{p.iteration} failed its provenance digest "
                          f"at {where}")
                raise IntegrityError(
                    f"provenance digest mismatch at {where}: partial for "
                    f"rank {p.dest_rank}, iteration {p.iteration}")

    def detected(self) -> int:
        """Total detections across all three verification points."""
        return sum(self.detections.values())
