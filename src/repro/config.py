"""Platform specification and the cost model.

Every simulated duration in the library is produced by one of the methods
on :class:`CostModel`, so an experiment's timing assumptions live in a
single auditable place.  :class:`PlatformSpec` describes a machine
(nodes, cores, network, file system) and bundles a cost model.

The default numbers are calibrated against the paper's testbed, NERSC
*Hopper* (Cray XE6): 24 cores/node at 2.1 GHz, Gemini mesh interconnect,
a Lustre file system with 156 OSTs and ~35 GB/s peak aggregate bandwidth
(so ~225 MB/s per OST).  Absolute values are not the point — the
reproduction targets the *shape* of the paper's results — but realistic
magnitudes keep the read/shuffle/compute balance honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Tuple

from .errors import ConfigError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB


@dataclass(frozen=True)
class CostModel:
    """Tunable cost coefficients for the discrete-event simulation.

    All rates are bytes/second, latencies in seconds.  Methods return
    durations in simulated seconds.
    """

    #: Per-message software/injection latency (the alpha term).
    net_latency: float = 2.0e-6
    #: Additional latency per mesh hop travelled.
    hop_latency: float = 1.0e-7
    #: Point-to-point link / NIC bandwidth (bytes/s).
    link_bandwidth: float = 5.0e9
    #: Latency for messages between ranks on the same node.
    intra_node_latency: float = 4.0e-7
    #: Shared-memory transfer bandwidth inside a node (bytes/s).
    intra_node_bandwidth: float = 2.0e10

    #: Per-request positioning/service overhead on an OST.
    ost_seek: float = 1.0e-3
    #: Streaming bandwidth of a single OST (bytes/s).
    ost_bandwidth: float = 2.25e8

    #: Rate at which one core performs "analysis work", expressed as
    #: elements/second for a unit-cost operator (ops_per_element == 1).
    core_element_rate: float = 4.0e8
    #: memcpy / pack / unpack bandwidth per core (bytes/s) — charged as
    #: system time in CPU profiles.
    memcpy_bandwidth: float = 6.0e9

    # -- derived durations -------------------------------------------------
    def msg_time(self, nbytes: int, hops: int = 1) -> float:
        """Time for one point-to-point network message of ``nbytes``."""
        return self.net_latency + hops * self.hop_latency + nbytes / self.link_bandwidth

    def intra_node_msg_time(self, nbytes: int) -> float:
        """Time for a message between two ranks on the same node."""
        return self.intra_node_latency + nbytes / self.intra_node_bandwidth

    def ost_time(self, nbytes: int, slowdown: float = 1.0) -> float:
        """Service time for one contiguous request on one OST."""
        if nbytes < 0:
            raise ConfigError(f"negative I/O size {nbytes}")
        return (self.ost_seek + nbytes / self.ost_bandwidth) * slowdown

    def compute_time(self, elements: int, ops_per_element: float = 1.0) -> float:
        """CPU (user) time to apply an operator to ``elements`` values."""
        if elements < 0:
            raise ConfigError(f"negative element count {elements}")
        return elements * ops_per_element / self.core_element_rate

    def memcpy_time(self, nbytes: int) -> float:
        """CPU (system) time to pack/unpack/copy ``nbytes``."""
        if nbytes < 0:
            raise ConfigError(f"negative memcpy size {nbytes}")
        return nbytes / self.memcpy_bandwidth

    def scaled(self, **overrides) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class PlatformSpec:
    """A complete machine description.

    Parameters
    ----------
    nodes:
        Number of compute nodes.
    cores_per_node:
        Cores available on each node (Hopper: 24).
    mesh_shape:
        2-D mesh/torus extent used for hop-count computation.  If ``None``
        a near-square mesh is derived from ``nodes``.
    torus:
        Whether hop counts wrap around (Gemini is a torus).
    n_osts:
        Number of Lustre object storage targets.
    default_stripe_size:
        Stripe width in bytes for newly created files.
    default_stripe_count:
        OSTs a new file is striped across (-1 = all).
    cost:
        The :class:`CostModel` for this platform.
    """

    nodes: int = 5
    cores_per_node: int = 24
    mesh_shape: Tuple[int, int] | None = None
    torus: bool = True
    n_osts: int = 156
    default_stripe_size: int = 4 * MiB
    default_stripe_count: int = -1
    cost: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError(f"need >= 1 node, got {self.nodes}")
        if self.cores_per_node < 1:
            raise ConfigError(f"need >= 1 core per node, got {self.cores_per_node}")
        if self.n_osts < 1:
            raise ConfigError(f"need >= 1 OST, got {self.n_osts}")
        if self.default_stripe_size < 1:
            raise ConfigError("stripe size must be positive")
        if self.mesh_shape is not None:
            nx, ny = self.mesh_shape
            if nx * ny < self.nodes:
                raise ConfigError(
                    f"mesh {self.mesh_shape} too small for {self.nodes} nodes"
                )

    @property
    def total_cores(self) -> int:
        """Total core count across the machine."""
        return self.nodes * self.cores_per_node

    def resolved_mesh_shape(self) -> Tuple[int, int]:
        """The mesh extent, deriving a near-square one when unspecified."""
        if self.mesh_shape is not None:
            return self.mesh_shape
        nx = max(1, int(math.isqrt(self.nodes)))
        ny = (self.nodes + nx - 1) // nx
        return (nx, ny)


def hopper_like(nodes: int = 5, *, n_osts: int = 156,
                stripe_size: int = 4 * MiB,
                cost: CostModel | None = None) -> PlatformSpec:
    """The paper's testbed: Cray XE6 'Hopper'-like platform.

    24 cores/node, Gemini-style torus, Lustre with ``n_osts`` OSTs.
    """
    return PlatformSpec(
        nodes=nodes,
        cores_per_node=24,
        torus=True,
        n_osts=n_osts,
        default_stripe_size=stripe_size,
        cost=cost or CostModel(),
    )


def small_test_machine(nodes: int = 2, cores_per_node: int = 4,
                       n_osts: int = 4,
                       stripe_size: int = 64 * KiB,
                       cost: CostModel | None = None) -> PlatformSpec:
    """A tiny platform for unit tests — small enough that every message
    and OST request is easy to reason about by hand."""
    return PlatformSpec(
        nodes=nodes,
        cores_per_node=cores_per_node,
        torus=False,
        n_osts=n_osts,
        default_stripe_size=stripe_size,
        cost=cost or CostModel(),
    )
