"""Rank decompositions: splitting a global selection across processes.

The paper's workloads assign each process a block of the slowest varying
dimension of a shared subset (e.g. Fig 1: subset 720 slices wide, 72
processes, 10 slices each).  :func:`block_partition` reproduces that;
:func:`grid_partition` generalizes to a Cartesian process grid.
"""

from __future__ import annotations

import math

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import DataspaceError
from .subarray import Subarray


def block_partition(sub: Subarray, nprocs: int, axis: int = 0) -> List[Subarray]:
    """Split ``sub`` into ``nprocs`` near-equal blocks along ``axis``.

    Extents that do not divide evenly give the first ``remainder`` ranks
    one extra slice (MPI_Dims-style balanced blocks).  Ranks that would
    receive zero slices get an empty selection (count 0 on ``axis``).
    """
    if nprocs < 1:
        raise DataspaceError(f"need >= 1 process, got {nprocs}")
    if not 0 <= axis < sub.ndims:
        raise DataspaceError(f"axis {axis} outside 0..{sub.ndims - 1}")
    extent = sub.count[axis]
    per, extra = divmod(extent, nprocs)
    parts: List[Subarray] = []
    pos = sub.start[axis]
    for rank in range(nprocs):
        mine = per + (1 if rank < extra else 0)
        start = list(sub.start)
        count = list(sub.count)
        start[axis] = pos
        count[axis] = mine
        parts.append(Subarray(tuple(start), tuple(count)))
        pos += mine
    return parts


def grid_partition(sub: Subarray, grid: Sequence[int]) -> List[Subarray]:
    """Split ``sub`` over a Cartesian process grid.

    ``grid`` gives the process counts per dimension; its product is the
    total rank count and its length must equal ``sub.ndims``.  Rank order
    is row-major over the grid.
    """
    if len(grid) != sub.ndims:
        raise DataspaceError(
            f"grid has {len(grid)} dims, selection has {sub.ndims}"
        )
    if any(g < 1 for g in grid):
        raise DataspaceError(f"non-positive grid extent in {tuple(grid)}")
    per_dim: List[List[Tuple[int, int]]] = []
    for d, g in enumerate(grid):
        extent = sub.count[d]
        per, extra = divmod(extent, g)
        spans = []
        pos = sub.start[d]
        for i in range(g):
            mine = per + (1 if i < extra else 0)
            spans.append((pos, mine))
            pos += mine
        per_dim.append(spans)
    parts: List[Subarray] = []
    for flat in range(math.prod(grid)):
        idx = []
        rem = flat
        for g in reversed(grid):
            idx.append(rem % g)
            rem //= g
        idx.reverse()
        start = tuple(per_dim[d][idx[d]][0] for d in range(sub.ndims))
        count = tuple(per_dim[d][idx[d]][1] for d in range(sub.ndims))
        parts.append(Subarray(start, count))
    return parts


def partition_covers(sub: Subarray, parts: Sequence[Subarray]) -> bool:
    """Sanity check: the parts tile ``sub`` exactly (element counts add up
    and all parts lie inside ``sub``).  Used by tests and assertions."""
    total = sum(p.n_elements for p in parts)
    if total != sub.n_elements:
        return False
    for p in parts:
        if p.empty:
            continue
        inter = p.intersect(sub)
        if inter is None or inter.n_elements != p.n_elements:
            return False
    return True
