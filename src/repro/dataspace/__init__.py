"""Logical N-D data model: datasets, hyperslabs, flattening, logical map."""

from .dataset import DatasetSpec
from .decompose import block_partition, grid_partition, partition_covers
from .flatten import RunList, flatten_subarray, merge_runlists
from .logical_map import (LogicalBlock, blocks_of_linear_range,
                          blocks_total_elements, reconstruct_run)
from .subarray import Subarray, full_selection

__all__ = [
    "DatasetSpec", "Subarray", "full_selection",
    "RunList", "flatten_subarray", "merge_runlists",
    "LogicalBlock", "blocks_of_linear_range", "blocks_total_elements",
    "reconstruct_run",
    "block_partition", "grid_partition", "partition_covers",
]
