"""Logical N-D data model: datasets, hyperslabs, flattening, logical map.

**Role.** The coordinate machinery under every access: dataset shapes,
hyperslab selections, flattening to byte runs, block/grid partitioning,
and the inverse map from anonymous byte ranges back to logical
coordinates.

**Paper mapping.** The hyperslab access model of §II (MPI-IO/PnetCDF
subarrays) and the *logical map* of §III-B — the paper's mechanism for
letting aggregators run the analysis on meaningful logical subsets of
the bytes they happen to hold.
"""

from .dataset import DatasetSpec
from .decompose import block_partition, grid_partition, partition_covers
from .flatten import RunList, flatten_subarray, merge_runlists
from .logical_map import (LogicalBlock, blocks_of_linear_range,
                          blocks_total_elements, reconstruct_run)
from .subarray import Subarray, full_selection

__all__ = [
    "DatasetSpec", "Subarray", "full_selection",
    "RunList", "flatten_subarray", "merge_runlists",
    "LogicalBlock", "blocks_of_linear_range", "blocks_total_elements",
    "reconstruct_run",
    "block_partition", "grid_partition", "partition_covers",
]
