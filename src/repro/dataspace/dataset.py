"""Logical dataset description.

A :class:`DatasetSpec` ties an N-dimensional logical shape (C order —
slowest dimension first, matching PnetCDF/HDF5 ``start``/``count``
conventions) to a byte region of a file.  It provides the linear-index
and coordinate arithmetic every layer above relies on.

Note on the paper's notation: the paper lists dims "from fast dimension
to slowest"; this library always uses the opposite (C) order, and the
workload builders perform the flip.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from ..errors import DataspaceError


@dataclass(frozen=True)
class DatasetSpec:
    """Shape + dtype + file binding of one dataset (one "variable").

    Parameters
    ----------
    shape:
        Logical extent per dimension, slowest first (C order).
    dtype:
        Element type (anything ``np.dtype`` accepts).
    file_offset:
        Byte offset of element (0, ..., 0) within the backing file.
    name:
        Optional variable name for diagnostics.
    """

    shape: Tuple[int, ...]
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))
    file_offset: int = 0
    name: str = "var"

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if len(self.shape) == 0:
            raise DataspaceError("dataset needs at least one dimension")
        if any(s <= 0 for s in self.shape):
            raise DataspaceError(f"non-positive extent in shape {self.shape}")
        if self.file_offset < 0:
            raise DataspaceError(f"negative file offset {self.file_offset}")

    # -- geometry -------------------------------------------------------
    @property
    def ndims(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def n_elements(self) -> int:
        """Total element count."""
        return math.prod(self.shape)

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Total dataset size in bytes."""
        return self.n_elements * self.itemsize

    @property
    def strides(self) -> Tuple[int, ...]:
        """Element strides per dimension (C order)."""
        out = [1] * self.ndims
        for d in range(self.ndims - 2, -1, -1):
            out[d] = out[d + 1] * self.shape[d + 1]
        return tuple(out)

    # -- coordinate arithmetic ---------------------------------------------
    def linear_index(self, coords: Sequence[int]) -> int:
        """Linear element index of a coordinate tuple."""
        if len(coords) != self.ndims:
            raise DataspaceError(
                f"{len(coords)} coords for {self.ndims}-D dataset"
            )
        idx = 0
        for c, s, extent in zip(coords, self.strides, self.shape):
            if not 0 <= c < extent:
                raise DataspaceError(f"coordinate {tuple(coords)} outside {self.shape}")
            idx += c * s
        return idx

    def coords_of(self, linear: int) -> Tuple[int, ...]:
        """Coordinate tuple of a linear element index."""
        if not 0 <= linear < self.n_elements:
            raise DataspaceError(
                f"linear index {linear} outside [0, {self.n_elements})"
            )
        coords = []
        for s in self.strides:
            coords.append(linear // s)
            linear %= s
        return tuple(coords)

    # -- file mapping ------------------------------------------------------
    def byte_offset_of(self, linear: int) -> int:
        """Absolute file byte offset of element ``linear``."""
        return self.file_offset + linear * self.itemsize

    def element_of_byte(self, abs_offset: int) -> int:
        """Linear element index containing the file byte ``abs_offset``."""
        rel = abs_offset - self.file_offset
        if rel < 0 or rel >= self.nbytes:
            raise DataspaceError(
                f"byte {abs_offset} outside dataset region "
                f"[{self.file_offset}, {self.file_offset + self.nbytes})"
            )
        return rel // self.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DatasetSpec {self.name!r} {self.shape} {self.dtype}>"
