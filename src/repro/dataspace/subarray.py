"""Hyperslab (subarray) selections: ``start``/``count`` per dimension.

This is the access-description vocabulary of PnetCDF's
``ncmpi_get_vara`` family that all paper examples use (Figures 5-6).
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import DataspaceError
from .dataset import DatasetSpec


@dataclass(frozen=True)
class Subarray:
    """A rectangular selection: element ``(start, start+count)`` per dim.

    Immutable; validated against a dataset with :meth:`validate`.
    """

    start: Tuple[int, ...]
    count: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", tuple(int(s) for s in self.start))
        object.__setattr__(self, "count", tuple(int(c) for c in self.count))
        if len(self.start) != len(self.count):
            raise DataspaceError(
                f"start has {len(self.start)} dims, count has {len(self.count)}"
            )
        if any(s < 0 for s in self.start):
            raise DataspaceError(f"negative start {self.start}")
        if any(c < 0 for c in self.count):
            raise DataspaceError(f"negative count {self.count}")

    @property
    def ndims(self) -> int:
        """Number of dimensions."""
        return len(self.start)

    @property
    def n_elements(self) -> int:
        """Elements selected (product of counts)."""
        return math.prod(self.count) if self.count else 0

    @property
    def empty(self) -> bool:
        """True if any count is zero."""
        return any(c == 0 for c in self.count)

    @property
    def end(self) -> Tuple[int, ...]:
        """Exclusive upper corner per dimension."""
        return tuple(s + c for s, c in zip(self.start, self.count))

    def validate(self, spec: DatasetSpec) -> None:
        """Raise :class:`DataspaceError` unless fully inside ``spec``."""
        if self.ndims != spec.ndims:
            raise DataspaceError(
                f"{self.ndims}-D selection on {spec.ndims}-D dataset"
            )
        for d, (s, c, extent) in enumerate(zip(self.start, self.count, spec.shape)):
            if s + c > extent:
                raise DataspaceError(
                    f"dim {d}: selection [{s}, {s + c}) exceeds extent {extent}"
                )

    def nbytes(self, spec: DatasetSpec) -> int:
        """Selected data volume in bytes for a dataset of ``spec``'s dtype."""
        return self.n_elements * spec.itemsize

    def contains(self, coords: Sequence[int]) -> bool:
        """Whether a coordinate tuple falls inside the selection."""
        if len(coords) != self.ndims:
            raise DataspaceError(
                f"{len(coords)} coords for {self.ndims}-D selection"
            )
        return all(s <= c < s + n
                   for c, s, n in zip(coords, self.start, self.count))

    def intersect(self, other: "Subarray") -> Optional["Subarray"]:
        """Rectangular intersection with ``other`` or None if disjoint."""
        if other.ndims != self.ndims:
            raise DataspaceError("intersecting selections of different rank")
        start = []
        count = []
        for (a, ca), (b, cb) in zip(zip(self.start, self.count),
                                    zip(other.start, other.count)):
            lo = max(a, b)
            hi = min(a + ca, b + cb)
            if hi <= lo:
                return None
            start.append(lo)
            count.append(hi - lo)
        return Subarray(tuple(start), tuple(count))

    def shifted(self, origin: Sequence[int]) -> "Subarray":
        """Selection re-expressed relative to ``origin`` (element-wise
        subtraction); used to convert global coords to rank-local ones."""
        if len(origin) != self.ndims:
            raise DataspaceError("origin rank mismatch")
        return Subarray(
            tuple(s - o for s, o in zip(self.start, origin)), self.count
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Subarray(start={self.start}, count={self.count})"


def full_selection(spec: DatasetSpec) -> Subarray:
    """The selection covering the entire dataset."""
    return Subarray(tuple(0 for _ in spec.shape), spec.shape)
