"""Flattening hyperslab selections into byte-offset run lists.

MPI-IO (and therefore two-phase collective I/O) operates on *flattened*
requests: sorted lists of contiguous ``(offset, length)`` byte runs.
This module produces and manipulates them.  Run lists are backed by
numpy arrays so that the large, highly non-contiguous access patterns of
the paper's climate workloads (hundreds of thousands of runs) stay cheap
to clip, merge and measure.
"""

from __future__ import annotations

import functools
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DataspaceError
from .dataset import DatasetSpec
from .subarray import Subarray


class RunList:
    """An immutable, sorted, non-overlapping list of byte runs.

    Attributes
    ----------
    offsets / lengths:
        Parallel ``int64`` arrays; ``offsets`` strictly increasing and
        runs non-overlapping (``offsets[i] + lengths[i] <= offsets[i+1]``).
    """

    __slots__ = ("offsets", "lengths", "_sig", "_tb")

    def __init__(self, offsets: np.ndarray, lengths: np.ndarray,
                 _validated: bool = False) -> None:
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.int64)
        self._sig = None
        self._tb = None
        if not _validated:
            self._validate()

    def _validate(self) -> None:
        if self.offsets.shape != self.lengths.shape or self.offsets.ndim != 1:
            raise DataspaceError("offsets/lengths must be equal-length 1-D arrays")
        if self.offsets.size:
            if (self.lengths <= 0).any():
                raise DataspaceError("run lengths must be positive")
            if (self.offsets < 0).any():
                raise DataspaceError("run offsets must be non-negative")
            ends = self.offsets + self.lengths
            if (self.offsets[1:] < ends[:-1]).any():
                raise DataspaceError("runs must be sorted and non-overlapping")

    # -- constructors ------------------------------------------------------
    @classmethod
    def empty(cls) -> "RunList":
        """The run list with no runs."""
        z = np.empty(0, dtype=np.int64)
        return cls(z, z, _validated=True)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "RunList":
        """Build from ``(offset, length)`` pairs (any order; zero-length
        runs dropped; overlapping pairs unioned; adjacent runs
        coalesced)."""
        pairs = [(int(o), int(n)) for o, n in pairs if n > 0]
        if not pairs:
            return cls.empty()
        pairs.sort()
        if pairs[0][0] < 0:
            raise DataspaceError("run offsets must be non-negative")
        offs = np.array([p[0] for p in pairs], dtype=np.int64)
        lens = np.array([p[1] for p in pairs], dtype=np.int64)
        if (offs[1:] < (offs + lens)[:-1]).any():
            return _union_sorted(offs, lens)
        return cls(offs, lens, _validated=True).coalesce()

    @classmethod
    def single(cls, offset: int, length: int) -> "RunList":
        """A run list holding one run (or empty if ``length == 0``)."""
        if length == 0:
            return cls.empty()
        return cls(np.array([offset], dtype=np.int64),
                   np.array([length], dtype=np.int64))

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return int(self.offsets.size)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for o, n in zip(self.offsets.tolist(), self.lengths.tolist()):
            yield (o, n)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunList):
            return NotImplemented
        return (np.array_equal(self.offsets, other.offsets)
                and np.array_equal(self.lengths, other.lengths))

    def __hash__(self):  # pragma: no cover - unhashable by design
        raise TypeError("RunList is unhashable")

    def signature(self) -> int:
        """A content hash usable as a cache key component.

        ``RunList`` itself is deliberately unhashable (equality is by
        value, and silent hashing of large arrays would hide cost);
        caches key on ``signature()`` and must verify candidates with
        ``==`` — see :func:`repro.io.twophase.make_plan`.
        """
        sig = self._sig
        if sig is None:
            sig = hash((int(self.offsets.size),
                        self.offsets.tobytes(), self.lengths.tobytes()))
            self._sig = sig
        return sig

    @property
    def total_bytes(self) -> int:
        """Sum of run lengths (memoized; run lists are immutable)."""
        tb = self._tb
        if tb is None:
            tb = self._tb = int(np.add.reduce(self.lengths))
        return tb

    def wire_size(self) -> int:
        """Bytes this run list occupies in a message (offset/length pairs
        of int64 plus a small header) — how ROMIO's offset-list exchange
        is charged on the network."""
        return 16 + 16 * len(self)

    def extent(self) -> Optional[Tuple[int, int]]:
        """``(first_byte, last_byte_exclusive)`` or None when empty."""
        if not len(self):
            return None
        return (int(self.offsets[0]), int(self.offsets[-1] + self.lengths[-1]))

    # -- algebra ----------------------------------------------------------
    def coalesce(self) -> "RunList":
        """Merge runs that touch (``end[i] == offset[i+1]``)."""
        if len(self) < 2:
            return self
        ends = self.offsets + self.lengths
        breaks = np.flatnonzero(self.offsets[1:] != ends[:-1])
        starts_idx = np.concatenate(([0], breaks + 1))
        ends_idx = np.concatenate((breaks, [len(self) - 1]))
        offs = self.offsets[starts_idx]
        lens = ends[ends_idx] - offs
        return RunList(offs, lens, _validated=True)

    def clip(self, lo: int, hi: int) -> "RunList":
        """Runs intersected with the half-open byte window ``[lo, hi)``."""
        if hi <= lo or not len(self):
            return RunList.empty()
        ends = self.offsets + self.lengths
        i0 = int(np.searchsorted(ends, lo, side="right"))
        i1 = int(np.searchsorted(self.offsets, hi, side="left"))
        if i1 <= i0:
            return RunList.empty()
        offs = np.maximum(self.offsets[i0:i1], lo)
        new_ends = np.minimum(ends[i0:i1], hi)
        lens = new_ends - offs
        keep = lens > 0
        return RunList(offs[keep], lens[keep], _validated=True)

    def shift(self, delta: int) -> "RunList":
        """Run list with every offset moved by ``delta`` bytes."""
        if not len(self):
            return self
        if int(self.offsets[0]) + delta < 0:
            raise DataspaceError("shift would produce negative offsets")
        return RunList(self.offsets + delta, self.lengths, _validated=True)

    def split_by_size(self, max_bytes: int) -> List["RunList"]:
        """Greedily cut into consecutive pieces of at most ``max_bytes``
        each (runs themselves may be split).

        Piece ``k`` covers request-space bytes ``[k*max_bytes,
        (k+1)*max_bytes)``; the run indices backing each piece are found
        with ``searchsorted`` over the cumulative run lengths rather
        than walking runs one by one.
        """
        if max_bytes <= 0:
            raise DataspaceError(f"max_bytes must be positive, got {max_bytes}")
        total = self.total_bytes
        if not total:
            return []
        mb = int(max_bytes)
        cum = np.concatenate((np.zeros(1, dtype=np.int64),
                              np.cumsum(self.lengths)))
        pieces: List[RunList] = []
        for lo in range(0, total, mb):
            hi = min(total, lo + mb)
            i0 = int(np.searchsorted(cum[1:], lo, side="right"))
            i1 = int(np.searchsorted(cum[:-1], hi, side="left"))
            offs = self.offsets[i0:i1].copy()
            lens = self.lengths[i0:i1].copy()
            head = lo - int(cum[i0])
            offs[0] += head
            lens[0] -= head
            lens[-1] -= int(cum[i1]) - hi
            pieces.append(RunList(offs, lens, _validated=True).coalesce())
        return pieces

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ext = self.extent()
        return f"<RunList n={len(self)} bytes={self.total_bytes} extent={ext}>"


def flatten_subarray(spec: DatasetSpec, sub: Subarray) -> RunList:
    """Flatten a hyperslab of ``spec`` into absolute file byte runs.

    This reproduces what an ``MPI_Type_create_subarray`` file view turns
    into inside ROMIO: the largest contiguous runs the selection allows,
    in ascending file order.
    """
    sub.validate(spec)
    if sub.empty:
        return RunList.empty()
    shape, start, count = spec.shape, sub.start, sub.count
    ndims = spec.ndims
    # s = first dimension index of the fully-covered suffix.
    s = ndims
    while s > 0 and start[s - 1] == 0 and count[s - 1] == shape[s - 1]:
        s -= 1
    strides = spec.strides
    if s == 0:
        # Entire dataset selected: one run.
        return RunList.single(spec.file_offset, spec.nbytes)
    r = s - 1  # deepest dimension that is not fully covered
    run_elements = count[r] * strides[r]
    base = start[r] * strides[r]
    # Outer dimensions 0..r-1 enumerate the runs in row-major order,
    # which yields strictly ascending offsets.
    contribs = [
        (start[j] + np.arange(count[j], dtype=np.int64)) * strides[j]
        for j in range(r)
    ]
    el_offsets = functools.reduce(
        lambda acc, c: (acc[:, None] + c[None, :]).reshape(-1),
        contribs,
        np.array([base], dtype=np.int64),
    )
    item = spec.itemsize
    offsets = spec.file_offset + el_offsets * item
    lengths = np.full(el_offsets.shape, run_elements * item, dtype=np.int64)
    return RunList(offsets, lengths, _validated=True).coalesce()


def merge_runlists(runlists: Sequence[RunList],
                   allow_overlap: bool = True) -> RunList:
    """Union of several run lists (the ROMIO "global offset list"):
    concatenated, sorted, coalesced.

    Overlapping inputs are legal for reads (several ranks may request
    the same bytes — ROMIO serves the union); pass
    ``allow_overlap=False`` for writes, where overlapping requests are a
    correctness error, and a :class:`DataspaceError` is raised instead.
    """
    non_empty = [rl for rl in runlists if len(rl)]
    if not non_empty:
        return RunList.empty()
    offs = np.concatenate([rl.offsets for rl in non_empty])
    lens = np.concatenate([rl.lengths for rl in non_empty])
    order = np.argsort(offs, kind="stable")
    offs, lens = offs[order], lens[order]
    ends = offs + lens
    if (offs[1:] < ends[:-1]).any():
        if not allow_overlap:
            raise DataspaceError(
                "rank requests overlap; overlapping collective writes "
                "are undefined"
            )
        return _union_sorted(offs, lens)
    return RunList(offs, lens, _validated=True).coalesce()


def _union_sorted(offs: np.ndarray, lens: np.ndarray) -> RunList:
    """Union of possibly-overlapping intervals already sorted by offset."""
    ends = offs + lens
    # Running maximum of the ends; a new union segment starts where the
    # offset exceeds every previous end.
    run_end = np.maximum.accumulate(ends)
    new_seg = np.ones(len(offs), dtype=bool)
    new_seg[1:] = offs[1:] > run_end[:-1]
    seg_idx = np.cumsum(new_seg) - 1
    n_segs = int(seg_idx[-1]) + 1
    seg_offs = offs[new_seg]
    seg_ends = np.zeros(n_segs, dtype=np.int64)
    np.maximum.at(seg_ends, seg_idx, ends)
    return RunList(seg_offs, seg_ends - seg_offs, _validated=True).coalesce()
