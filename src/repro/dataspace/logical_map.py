"""The paper's "logical map": byte sequences → logical coordinates.

Inside the two-phase layer, an aggregator holds anonymous byte ranges —
the self-describing metadata of the high-level I/O library is gone.
Collective computing needs to run the user's map function on
*meaningful* subsets, so the runtime reconstructs, for every contiguous
byte run in the collective buffer, the hyperslab blocks it corresponds
to in the original dataset (paper §III-B: ``sequence0 = {(start0=0,
length0=10, start1=0, length1=10), ...}``).

A contiguous linear element range decomposes into at most ``2*ndims - 1``
rectangular blocks (partial head rows, a full-slab body, partial tail
rows, recursively).  :func:`blocks_of_linear_range` performs that
decomposition; :func:`reconstruct_run` adds the byte↔element conversion.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import DataspaceError
from .dataset import DatasetSpec
from .subarray import Subarray


@dataclass(frozen=True)
class LogicalBlock:
    """One rectangular block of dataset coordinates.

    ``start``/``count`` follow the same C-order convention as
    :class:`~repro.dataspace.subarray.Subarray`.
    """

    start: Tuple[int, ...]
    count: Tuple[int, ...]

    @property
    def n_elements(self) -> int:
        """Elements covered by the block."""
        return math.prod(self.count)

    def as_subarray(self) -> Subarray:
        """The block as a :class:`Subarray` selection."""
        return Subarray(self.start, self.count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LogicalBlock(start={self.start}, count={self.count})"


def _decompose(shape: Tuple[int, ...], e0: int, e1: int,
               prefix: Tuple[int, ...], out: List[LogicalBlock]) -> None:
    """Recursive worker: decompose linear range [e0, e1) of an array of
    ``shape`` into blocks, accumulating into ``out`` in ascending order.
    ``prefix`` carries coordinates of already-fixed outer dimensions."""
    if e0 >= e1:
        return
    ndims = len(shape)
    nfixed = len(prefix)
    ones = (1,) * nfixed
    total = math.prod(shape)
    if ndims == 1:
        out.append(LogicalBlock(prefix + (e0,), ones + (e1 - e0,)))
        return
    if e0 == 0 and e1 == total:
        out.append(LogicalBlock(prefix + (0,) * ndims, ones + shape))
        return
    inner_shape = shape[1:]
    slab = total // shape[0]  # elements per index of the outermost dim
    i0, r0 = divmod(e0, slab)
    i1, r1 = divmod(e1, slab)  # exclusive end lands in slice i1 unless r1 == 0
    if i0 == i1 or (i1 == i0 + 1 and r1 == 0):
        # Entire range inside one outer slice.
        _decompose(inner_shape, r0, r0 + (e1 - e0), prefix + (i0,), out)
        return
    body_start = i0
    if r0 != 0:
        # Partial head inside slice i0.
        _decompose(inner_shape, r0, slab, prefix + (i0,), out)
        body_start = i0 + 1
    body_end = i1  # full slices [body_start, body_end)
    if body_end > body_start:
        out.append(LogicalBlock(
            prefix + (body_start,) + (0,) * (ndims - 1),
            ones + (body_end - body_start,) + inner_shape,
        ))
    if r1 != 0:
        # Partial tail inside slice i1.
        _decompose(inner_shape, 0, r1, prefix + (i1,), out)


def blocks_of_linear_range(spec: DatasetSpec, e0: int, e1: int) -> List[LogicalBlock]:
    """Decompose the linear element range ``[e0, e1)`` into hyperslab
    blocks of ``spec``, ascending in file order.

    The blocks partition the range exactly: their element counts sum to
    ``e1 - e0`` and re-linearizing them reproduces the range.
    """
    if not 0 <= e0 <= e1 <= spec.n_elements:
        raise DataspaceError(
            f"element range [{e0}, {e1}) outside [0, {spec.n_elements}]"
        )
    out: List[LogicalBlock] = []
    _decompose(spec.shape, e0, e1, (), out)
    return out


def reconstruct_run(spec: DatasetSpec, abs_offset: int, length: int
                    ) -> List[LogicalBlock]:
    """Logical blocks of one contiguous byte run of the dataset.

    The run must be element-aligned — two-phase I/O never splits an
    element across messages because file domains are derived from the
    flattened (element-aligned) offset lists.
    """
    item = spec.itemsize
    rel = abs_offset - spec.file_offset
    if rel < 0:
        raise DataspaceError(f"byte offset {abs_offset} before dataset start")
    if rel % item or length % item:
        raise DataspaceError(
            f"run ({abs_offset}, {length}) not aligned to {item}-byte elements"
        )
    e0 = rel // item
    e1 = e0 + length // item
    return blocks_of_linear_range(spec, e0, e1)


def blocks_total_elements(blocks: List[LogicalBlock]) -> int:
    """Sum of elements over ``blocks``."""
    return sum(b.n_elements for b in blocks)
