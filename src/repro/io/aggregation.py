"""Aggregator selection and file-domain partitioning (ROMIO-style).

Two-phase I/O designates a subset of ranks as *aggregators*; the byte
range covered by the job's combined request is divided into contiguous
*file domains*, one per aggregator.  This module reproduces ROMIO's
even partitioning, with optional Lustre-style stripe alignment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import Machine
from ..dataspace import RunList
from ..errors import IOLayerError


def select_aggregators(machine: Machine, nprocs: int,
                       per_node: int = 1) -> List[int]:
    """Pick aggregator ranks: the first ``per_node`` ranks of each node.

    Mirrors ROMIO's ``cb_config_list`` default of spreading aggregators
    across nodes.  Every *occupied* node must host at least ``per_node``
    ranks: silently truncating (the pre-fix behaviour) would hand that
    node a thinner aggregator set than the hints promised and skew the
    file-domain partition, so a thin run raises :class:`IOLayerError`
    naming the node instead.  Nodes hosting no ranks at all are simply
    skipped (a small job on a large machine is fine).
    """
    if per_node < 1:
        raise IOLayerError(f"per_node must be >= 1, got {per_node}")
    aggregators: List[int] = []
    for node in range(machine.spec.nodes):
        ranks = machine.ranks_on_node(node, nprocs)
        if ranks and len(ranks) < per_node:
            raise IOLayerError(
                f"aggregators_per_node={per_node} but node {node} hosts "
                f"only {len(ranks)} rank(s); lower the hint or run more "
                f"ranks per node"
            )
        aggregators.extend(ranks[:per_node])
    if not aggregators:
        raise IOLayerError("no aggregators selected")
    return sorted(aggregators)


def snap_down(pos: int, grid: Optional[Tuple[int, int]]) -> int:
    """Round ``pos`` down onto an alignment grid ``(base, step)``.

    Collective computing needs windows that never split an element
    across iterations (the map operates on whole values); the grid is
    ``(dataset file_offset, itemsize)``.  ``None`` disables snapping.
    """
    if grid is None:
        return pos
    base, step = grid
    if step <= 1:
        return pos
    if pos <= base:
        return pos
    return base + ((pos - base) // step) * step


def partition_file_domains(extent: Tuple[int, int], n_aggregators: int,
                           stripe_size: Optional[int] = None,
                           grid: Optional[Tuple[int, int]] = None
                           ) -> List[Tuple[int, int]]:
    """Split the byte range ``extent`` into ``n_aggregators`` contiguous
    domains of near-equal size.

    With ``stripe_size`` given, domain boundaries are rounded up to
    stripe multiples (Lustre-aware ROMIO), so no two aggregators touch
    the same stripe.  Domains may be empty (``lo == hi``) when there are
    more aggregators than stripes.
    """
    lo, hi = extent
    if hi < lo:
        raise IOLayerError(f"invalid extent {extent}")
    if n_aggregators < 1:
        raise IOLayerError(f"need >= 1 aggregator, got {n_aggregators}")
    total = hi - lo
    if total == 0:
        return [(lo, lo)] * n_aggregators
    if stripe_size:
        # Work in whole stripes relative to the first stripe boundary
        # at or below `lo`.
        base = (lo // stripe_size) * stripe_size
        nstripes = (hi - base + stripe_size - 1) // stripe_size
        per, extra = divmod(nstripes, n_aggregators)
        domains: List[Tuple[int, int]] = []
        pos = base
        for a in range(n_aggregators):
            mine = per + (1 if a < extra else 0)
            d_lo = max(snap_down(pos, grid), lo)
            pos += mine * stripe_size
            d_hi = min(snap_down(pos, grid) if a < n_aggregators - 1 else pos,
                       hi)
            domains.append((d_lo, max(d_lo, d_hi)))
        return domains
    per, extra = divmod(total, n_aggregators)
    domains = []
    pos = lo
    for a in range(n_aggregators):
        mine = per + (1 if a < extra else 0)
        nxt = pos + mine
        hi_a = hi if a == n_aggregators - 1 else snap_down(nxt, grid)
        domains.append((pos, max(pos, hi_a)))
        pos = max(pos, hi_a)
    return domains


def iteration_windows(domain: Tuple[int, int], runs: RunList,
                      cb_buffer_size: int,
                      grid: Optional[Tuple[int, int]] = None
                      ) -> List[Tuple[int, int]]:
    """The per-iteration byte windows an aggregator serves.

    ROMIO walks the *requested* portion of the domain in collective-
    buffer-size steps: windows start at the first needed byte and stop
    at the last, and windows containing no requested bytes are skipped.
    With ``grid`` given, interior window boundaries are snapped down to
    the element grid so no element is ever split across iterations
    (required by the collective-computing map).
    Returns ``[(win_lo, win_hi), ...]`` in ascending order.
    """
    if cb_buffer_size < 1:
        raise IOLayerError(f"cb_buffer_size must be >= 1, got {cb_buffer_size}")
    if grid is not None and cb_buffer_size < grid[1]:
        raise IOLayerError(
            f"cb_buffer_size {cb_buffer_size} smaller than one element "
            f"({grid[1]} bytes)"
        )
    d_lo, d_hi = domain
    mine = runs.clip(d_lo, d_hi)
    ext = mine.extent()
    if ext is None:
        return []
    lo, hi = ext
    run_ends = mine.offsets + mine.lengths
    windows = []
    pos = lo
    while pos < hi:
        win_hi = snap_down(min(pos + cb_buffer_size, hi), grid)
        if win_hi <= pos or win_hi >= hi:
            win_hi = min(pos + cb_buffer_size, hi)
        # Window is non-empty iff some run intersects [pos, win_hi) —
        # same test clip() does, without materializing the clipped list.
        if (np.searchsorted(run_ends, pos, side="right")
                < np.searchsorted(mine.offsets, win_hi, side="left")):
            windows.append((pos, win_hi))
        pos = win_hi
    return windows
