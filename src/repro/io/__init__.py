"""MPI-IO layer: independent I/O, data sieving, two-phase collective I/O."""

from .aggregation import (iteration_windows, partition_file_domains,
                          select_aggregators)
from .file import MPIFile
from .hints import CollectiveHints
from .independent import independent_read, independent_write
from .nonblocking import icollective_read, wait_and_unpack
from .requests import AccessRequest, RunPlacer
from .sieving import sieving_read
from .twophase import (TwoPhasePlan, collective_read, collective_write,
                       make_plan)

__all__ = [
    "iteration_windows", "partition_file_domains", "select_aggregators",
    "MPIFile", "CollectiveHints",
    "independent_read", "independent_write",
    "icollective_read", "wait_and_unpack",
    "AccessRequest", "RunPlacer", "sieving_read",
    "TwoPhasePlan", "collective_read", "collective_write", "make_plan",
]
