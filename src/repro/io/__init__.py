"""MPI-IO layer: independent I/O, data sieving, two-phase collective I/O.

**Role.** A faithful ROMIO-style MPI-IO implementation: offset-list
exchange, file-domain partitioning, aggregator iterations bounded by
the collective buffer, the alltoallv shuffle, plus sieving, independent
and nonblocking variants.

**Paper mapping.** §II's background protocol — the *thing the paper
breaks*: collective computing (:mod:`repro.core`) splits this two-phase
pipeline between its read and shuffle phases, and the resilient
variants (:mod:`repro.faults`) recover it, all reusing this package's
:class:`~repro.io.twophase.TwoPhasePlan` artifacts.
"""

from .aggregation import (iteration_windows, partition_file_domains,
                          select_aggregators)
from .file import MPIFile
from .hints import CollectiveHints
from .independent import independent_read, independent_write
from .nonblocking import icollective_read, wait_and_unpack
from .requests import AccessRequest, RunPlacer
from .sieving import sieving_read
from .twophase import (TwoPhasePlan, collective_read, collective_write,
                       make_plan)

__all__ = [
    "iteration_windows", "partition_file_domains", "select_aggregators",
    "MPIFile", "CollectiveHints",
    "independent_read", "independent_write",
    "icollective_read", "wait_and_unpack",
    "AccessRequest", "RunPlacer", "sieving_read",
    "TwoPhasePlan", "collective_read", "collective_write", "make_plan",
]
