"""Independent (non-collective) I/O.

Each rank issues its own runs straight to the file system, one request
per contiguous run — the access pattern the paper profiles in Figure 3,
where per-process non-contiguous requests swamp the OSTs with small
reads and the CPUs sit in I/O wait.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..mpi import RankContext
from ..pfs import PFSFile
from .requests import AccessRequest, RunPlacer


def independent_read(ctx: RankContext, file: PFSFile,
                     request: AccessRequest) -> Generator:
    """Read ``request`` with one PFS operation per run.

    Returns the packed ``uint8`` buffer (runs concatenated in file
    order); use :meth:`AccessRequest.as_array` to view it as elements.
    """
    placer = RunPlacer(request.runs)
    buf = np.empty(placer.total_bytes, dtype=np.uint8)
    for offset, length in request.runs:
        read = ctx.kernel.process(
            ctx.fs.read(file, offset, length, client=ctx.node.index),
            name=f"iread:r{ctx.rank}@{offset}",
        )
        data = yield from ctx.wait_recording(read, "wait")
        for local, _file_off, piece in placer.place(offset, length):
            buf[local:local + piece] = np.frombuffer(data, dtype=np.uint8)
        yield from ctx.memcpy(length)
    return buf


def independent_write(ctx: RankContext, file: PFSFile,
                      request: AccessRequest, data: np.ndarray) -> Generator:
    """Write the packed byte buffer ``data`` to the request's runs, one
    PFS operation per run."""
    flat = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    pos = 0
    for offset, length in request.runs:
        piece = flat[pos:pos + length].tobytes()
        yield from ctx.memcpy(length)
        write = ctx.kernel.process(
            ctx.fs.write(file, offset, piece, client=ctx.node.index),
            name=f"iwrite:r{ctx.rank}@{offset}",
        )
        yield from ctx.wait_recording(write, "wait")
        pos += length
    return None
