"""Access-request plumbing shared by the I/O strategies.

:class:`AccessRequest` bundles what one rank wants from a file — a
dataset + hyperslab view (when present) and the flattened byte runs —
and :class:`RunPlacer` maps absolute file pieces back into the rank's
local, densely-packed receive buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..dataspace import DatasetSpec, RunList, Subarray, flatten_subarray
from ..errors import IOLayerError


@dataclass(frozen=True)
class AccessRequest:
    """One rank's request against one file.

    Build with :meth:`from_subarray` (the PnetCDF-style path) or
    :meth:`from_runs` (the raw MPI-IO file-view path).
    """

    runs: RunList
    spec: Optional[DatasetSpec] = None
    sub: Optional[Subarray] = None

    @classmethod
    def from_subarray(cls, spec: DatasetSpec, sub: Subarray) -> "AccessRequest":
        """Request a hyperslab of a dataset."""
        return cls(runs=flatten_subarray(spec, sub), spec=spec, sub=sub)

    @classmethod
    def from_runs(cls, runs: RunList) -> "AccessRequest":
        """Request raw byte runs (no logical interpretation attached)."""
        return cls(runs=runs)

    @property
    def nbytes(self) -> int:
        """Requested data volume."""
        return self.runs.total_bytes

    def as_array(self, data: np.ndarray) -> np.ndarray:
        """Reinterpret the densely packed byte buffer as the request's
        element type, shaped to the hyperslab when one is attached."""
        if self.spec is None:
            return data
        arr = data.view(self.spec.dtype)
        if self.sub is not None:
            return arr.reshape(self.sub.count)
        return arr


class RunPlacer:
    """Maps absolute file pieces into a rank's packed local buffer.

    The local buffer concatenates the rank's runs in ascending file
    order, which for a flattened hyperslab equals row-major element
    order.  ``place(offset, length)`` returns the local byte positions
    covered — a piece may span several runs only if the caller allows
    it (two-phase senders always send per-run pieces, but data sieving
    extracts window-sized spans).
    """

    def __init__(self, runs: RunList) -> None:
        self.runs = runs
        self._prefix = np.concatenate(
            ([0], np.cumsum(runs.lengths))) if len(runs) else np.zeros(1, np.int64)

    @property
    def total_bytes(self) -> int:
        """Size of the packed buffer."""
        return int(self._prefix[-1])

    def place(self, offset: int, length: int) -> List[Tuple[int, int, int]]:
        """``[(local_pos, file_offset, piece_len), ...]`` covering the
        intersection of ``[offset, offset+length)`` with the runs.

        Raises :class:`IOLayerError` if any requested byte of the span
        that lies inside a run is... — pieces must be fully covered by
        the runs; bytes in holes are ignored only by
        :meth:`place_clipped`.
        """
        placed = self.place_clipped(offset, length)
        got = sum(p[2] for p in placed)
        if got != length:
            raise IOLayerError(
                f"piece ({offset}, {length}) not fully covered by request "
                f"runs (covered {got} bytes)"
            )
        return placed

    def place_clipped(self, offset: int, length: int
                      ) -> List[Tuple[int, int, int]]:
        """Like :meth:`place` but silently skipping bytes that fall in
        holes between runs (used when unpacking sieving windows)."""
        runs = self.runs
        if length > 0 and len(runs):
            # Fast path: two-phase shuffle pieces lie inside one run.
            idx = int(np.searchsorted(runs.offsets, offset, side="right")) - 1
            if idx >= 0:
                run_off = int(runs.offsets[idx])
                if offset + length <= run_off + int(runs.lengths[idx]):
                    local = int(self._prefix[idx]) + (offset - run_off)
                    return [(local, offset, length)]
        clipped = self.runs.clip(offset, offset + length)
        out: List[Tuple[int, int, int]] = []
        for o, n in clipped:
            idx = int(np.searchsorted(self.runs.offsets, o, side="right")) - 1
            run_off = int(self.runs.offsets[idx])
            local = int(self._prefix[idx]) + (o - run_off)
            out.append((local, o, n))
        return out
