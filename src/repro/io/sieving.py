"""Data sieving (ROMIO's other classic optimization).

Instead of one tiny read per run, a rank reads a large contiguous
window spanning many runs — holes included — and extracts the useful
bytes in memory.  Far fewer I/O requests at the price of extra bytes
moved and extra copying (charged as system time).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..config import MiB
from ..errors import IOLayerError
from ..mpi import RankContext
from ..pfs import PFSFile
from .requests import AccessRequest, RunPlacer


def sieving_read(ctx: RankContext, file: PFSFile, request: AccessRequest,
                 buffer_size: int = 4 * MiB) -> Generator:
    """Read ``request`` with data sieving.

    Windows of at most ``buffer_size`` bytes sweep the request's extent;
    each window is fetched with one contiguous PFS read from its first
    to its last needed byte, then the useful runs are copied out.
    Returns the packed ``uint8`` buffer.
    """
    if buffer_size < 1:
        raise IOLayerError(f"buffer_size must be >= 1, got {buffer_size}")
    placer = RunPlacer(request.runs)
    buf = np.empty(placer.total_bytes, dtype=np.uint8)
    ext = request.runs.extent()
    if ext is None:
        return buf
    lo, hi = ext
    pos = lo
    while pos < hi:
        win_hi = min(pos + buffer_size, hi)
        window = request.runs.clip(pos, win_hi)
        wext = window.extent()
        if wext is not None:
            r_lo, r_hi = wext
            read = ctx.kernel.process(
                ctx.fs.read(file, r_lo, r_hi - r_lo, client=ctx.node.index),
                name=f"sieve:r{ctx.rank}@{r_lo}",
            )
            data = yield from ctx.wait_recording(read, "wait")
            raw = np.frombuffer(data, dtype=np.uint8)
            useful = 0
            for local, file_off, piece in placer.place_clipped(r_lo, r_hi - r_lo):
                src = file_off - r_lo
                buf[local:local + piece] = raw[src:src + piece]
                useful += piece
            yield from ctx.memcpy(useful)
        pos = win_hi
    return buf
