"""MPI-IO style file handles (``MPI_File`` facade).

:class:`MPIFile` ties a communicator's view of one PFS file to the I/O
strategies: independent reads/writes at explicit offsets, file views
built from MPI derived datatypes, and the collective read/write entry
points.  The high-level PnetCDF-like layer sits on top of this.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..dataspace import RunList
from ..errors import IOLayerError
from ..mpi import RankContext
from ..mpi.datatypes import Basic, Datatype
from ..pfs import PFSFile
from ..profiling import PhaseTimeline
from .hints import CollectiveHints
from .independent import independent_read, independent_write
from .requests import AccessRequest
from .sieving import sieving_read
from .twophase import collective_read, collective_write


class MPIFile:
    """One rank's handle on an open file.

    Parameters
    ----------
    ctx:
        The owning rank's context.
    file:
        PFS file metadata (from ``ctx.fs.lookup``).
    hints:
        Collective-buffering hints for this handle.
    """

    def __init__(self, ctx: RankContext, file: PFSFile,
                 hints: Optional[CollectiveHints] = None) -> None:
        self.ctx = ctx
        self.file = file
        self.hints = hints or CollectiveHints()
        self._view_disp = 0
        self._view_type: Optional[Datatype] = None

    @classmethod
    def open(cls, ctx: RankContext, name: str,
             hints: Optional[CollectiveHints] = None) -> "MPIFile":
        """Open ``name`` (must exist on the machine's file system)."""
        return cls(ctx, ctx.fs.lookup(name), hints=hints)

    # -- explicit offsets -----------------------------------------------------
    def read_at(self, offset: int, nbytes: int) -> Generator:
        """Independent contiguous read; returns bytes."""
        proc = self.ctx.kernel.process(
            self.ctx.fs.read(self.file, offset, nbytes,
                             client=self.ctx.node.index),
            name=f"read_at:r{self.ctx.rank}",
        )
        data = yield from self.ctx.wait_recording(proc, "wait")
        return data

    def write_at(self, offset: int, data: bytes) -> Generator:
        """Independent contiguous write."""
        proc = self.ctx.kernel.process(
            self.ctx.fs.write(self.file, offset, data,
                              client=self.ctx.node.index),
            name=f"write_at:r{self.ctx.rank}",
        )
        yield from self.ctx.wait_recording(proc, "wait")
        return None

    # -- file views ------------------------------------------------------------
    def set_view(self, disp: int, filetype: Datatype) -> None:
        """Install a file view: subsequent ``*_all`` calls address the
        bytes selected by ``filetype`` starting at byte ``disp``."""
        if disp < 0:
            raise IOLayerError(f"negative view displacement {disp}")
        self._view_disp = disp
        self._view_type = filetype

    def _view_request(self, count: int) -> AccessRequest:
        if self._view_type is None:
            raise IOLayerError("no file view set; call set_view first")
        runs = self._view_type.tiled(count).shift(self._view_disp)
        return AccessRequest.from_runs(runs)

    # -- collective entry points -------------------------------------------------
    def read_all(self, count: int = 1,
                 timeline: Optional[PhaseTimeline] = None) -> Generator:
        """Collective read of ``count`` filetype instances through the
        current view; returns the packed ``uint8`` buffer."""
        request = self._view_request(count)
        buf = yield from collective_read(self.ctx, self.file, request,
                                         self.hints, timeline)
        return buf

    def write_all(self, data: np.ndarray, count: int = 1,
                  timeline: Optional[PhaseTimeline] = None) -> Generator:
        """Collective write of ``count`` filetype instances."""
        request = self._view_request(count)
        yield from collective_write(self.ctx, self.file, request, data,
                                    self.hints, timeline)
        return None

    def read_request(self, request: AccessRequest, *, collective: bool = True,
                     sieve: bool = False,
                     timeline: Optional[PhaseTimeline] = None) -> Generator:
        """Read an explicit :class:`AccessRequest`.

        ``collective=True`` uses two-phase I/O (collective over the
        communicator); otherwise each rank reads independently, with
        ``sieve=True`` enabling data sieving.
        """
        if collective:
            buf = yield from collective_read(self.ctx, self.file, request,
                                             self.hints, timeline)
        elif sieve:
            buf = yield from sieving_read(self.ctx, self.file, request,
                                          buffer_size=self.hints.cb_buffer_size)
        else:
            buf = yield from independent_read(self.ctx, self.file, request)
        return buf

    def write_request(self, request: AccessRequest, data: np.ndarray, *,
                      collective: bool = True,
                      timeline: Optional[PhaseTimeline] = None) -> Generator:
        """Write an explicit :class:`AccessRequest`."""
        if collective:
            yield from collective_write(self.ctx, self.file, request, data,
                                        self.hints, timeline)
        else:
            yield from independent_write(self.ctx, self.file, request, data)
        return None
