"""MPI-IO hints controlling collective buffering (ROMIO ``cb_*`` hints).

The paper's experiments vary exactly these knobs: the collective buffer
size (Figures 1 & 12) and the number of aggregators per node (Figure 1
uses 6 per node; the main benchmarks use one per node, "the number of
aggregators is equal to the number of compute nodes").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MiB
from ..errors import IOLayerError


@dataclass(frozen=True)
class CollectiveHints:
    """Tunables of the two-phase protocol.

    Parameters
    ----------
    cb_buffer_size:
        Collective buffer bytes per aggregator per iteration (ROMIO
        default 4 MiB in MPICH of the paper's era).
    aggregators_per_node:
        How many ranks per node act as aggregators.
    align_to_stripes:
        Align file-domain boundaries to the file's stripe size
        (Lustre-aware ROMIO behaviour).
    pipeline:
        Overlap iteration ``i``'s shuffle with iteration ``i+1``'s read
        (the nonblocking two-phase variant the paper profiles in Fig 1).
    two_level:
        Node-aware two-level aggregation.  The offset-list exchange and
        the shuffle stage data through one leader per node before any
        inter-node traffic (intra-node request aggregation, after Kang
        et al., arXiv:1907.12656); the CC path additionally combines
        partial results node-locally before they cross the network when
        the reduction op is :attr:`~repro.core.ops.MapReduceOp.reassociable`
        (in-node combiner, after Lee et al., arXiv:1511.04861).  Data
        results are bit-identical to the one-level protocol; only
        ``sim.time`` and cross-node wire bytes change.
    """

    cb_buffer_size: int = 4 * MiB
    aggregators_per_node: int = 1
    align_to_stripes: bool = True
    pipeline: bool = True
    two_level: bool = False

    def __post_init__(self) -> None:
        if self.cb_buffer_size < 1:
            raise IOLayerError(
                f"cb_buffer_size must be positive, got {self.cb_buffer_size}"
            )
        if self.aggregators_per_node < 1:
            raise IOLayerError(
                f"aggregators_per_node must be >= 1, got {self.aggregators_per_node}"
            )
