"""Two-phase collective I/O (the ROMIO protocol the paper modifies).

Collective read, step by step (write is the mirror image):

1. **Offset-list exchange** — every rank flattens its request and the
   run lists are allgathered (ROMIO's ``ADIOI_Calc_others_req``),
   charged on the network by their real metadata size.
2. **File domains** — the combined extent is split evenly (optionally
   stripe-aligned) across the aggregator ranks.
3. **Iterations** — each aggregator sweeps the requested part of its
   domain in collective-buffer-size windows.  Per window it issues one
   contiguous PFS read (first to last needed byte) and then *shuffles*:
   sends every rank the pieces of that rank's request found in the
   window.  With ``hints.pipeline`` the next window's read is posted
   before the current shuffle — the nonblocking two-phase variant whose
   profile is the paper's Figure 1.
4. Receivers unpack arriving pieces into their packed local buffer.

The protocol moves *real* bytes; the result is numerically identical to
an independent read of the same request.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..check.flags import checks_enabled
from ..dataspace import RunList, merge_runlists
from ..errors import IOLayerError
from ..mpi import RankContext, collectives as coll
from ..mpi.comm import Communicator, NodeSplit
from ..mpi.wire import wire_size
from ..obs import metrics
from ..pfs import PFSFile
from ..profiling import PhaseTimeline
from .aggregation import (iteration_windows, partition_file_domains,
                          select_aggregators)
from .hints import CollectiveHints
from .requests import AccessRequest, RunPlacer


def _record_shuffle(comm: Communicator, src: int, dst: int,
                    closed: int, payload) -> None:
    """Account one shuffle hop: the closed-form and measured wire bytes,
    in total and split by whether the hop crosses a node boundary.  The
    intra-/inter-node split always sums to ``io.shuffle_bytes``, which
    :mod:`repro.obs.report` cross-checks as an invariant."""
    m = metrics.current()
    if m is None:
        return
    measured = wire_size(payload)
    m.count("io.shuffle_bytes", closed)
    m.count("io.shuffle_bytes_measured", measured)
    prefix = ("io.intranode_bytes" if comm.node_of(src) == comm.node_of(dst)
              else "io.internode_bytes")
    m.count(prefix, closed)
    m.count(prefix + "_measured", measured)


@dataclass(frozen=True)
class TwoPhasePlan:
    """The deterministic schedule every rank derives after the offset
    exchange: aggregators, their file domains, and per-aggregator
    iteration windows.

    Shared derived artifacts (:attr:`global_runs`, the flattened window
    arrays and the receiver-schedule :attr:`membership` table) are
    computed lazily once per plan and reused by every rank's aggregator
    and receiver loops, instead of being re-derived per (rank, window)
    with O(P²·windows) ``RunList.clip`` calls.
    """

    all_runs: List[RunList]
    aggregators: List[int]
    domains: List[Tuple[int, int]]
    windows: List[List[Tuple[int, int]]]

    @property
    def ntimes(self) -> int:
        """Global iteration count (max over aggregators)."""
        return max((len(w) for w in self.windows), default=0)

    @cached_property
    def _agg_pos(self) -> Dict[int, int]:
        return {a: i for i, a in enumerate(self.aggregators)}

    def aggregator_index(self, rank: int) -> Optional[int]:
        """Position of ``rank`` in the aggregator list, or None."""
        return self._agg_pos.get(rank)

    # -- shared derived artifacts -----------------------------------------
    @cached_property
    def global_runs(self) -> RunList:
        """Union of every rank's runs (ROMIO's global offset list),
        merged once per plan instead of inside every aggregator loop."""
        return merge_runlists(self.all_runs)

    @cached_property
    def global_runs_strict(self) -> RunList:
        """Like :attr:`global_runs` but rejecting overlapping requests
        (the collective-write correctness rule)."""
        return merge_runlists(self.all_runs, allow_overlap=False)

    @cached_property
    def _flat_windows(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                     np.ndarray, Tuple[int, ...]]:
        """Every (aggregator, iteration) window flattened in
        ``(aggregator, t)`` order: ``(agg_idx, t, lo, hi, agg_base)``
        arrays, where ``agg_base[i]`` is aggregator ``i``'s first flat
        index."""
        aggs: List[int] = []
        ts: List[int] = []
        lows: List[int] = []
        highs: List[int] = []
        base: List[int] = []
        pos = 0
        for i, ws in enumerate(self.windows):
            base.append(pos)
            for t, (lo, hi) in enumerate(ws):
                aggs.append(i)
                ts.append(t)
                lows.append(lo)
                highs.append(hi)
            pos += len(ws)
        return (np.asarray(aggs, dtype=np.int64),
                np.asarray(ts, dtype=np.int64),
                np.asarray(lows, dtype=np.int64),
                np.asarray(highs, dtype=np.int64),
                tuple(base))

    def flat_index(self, agg_idx: int, t: int) -> int:
        """Flat window index of iteration ``t`` of aggregator ``agg_idx``."""
        return self._flat_windows[4][agg_idx] + t

    @cached_property
    def membership(self) -> np.ndarray:
        """The receiver schedule: ``bool[nranks, n_flat_windows]`` — does
        rank ``r`` request bytes inside flat window ``w``?

        Built once per plan with vectorized ``searchsorted`` over all
        window boundaries; equivalent to (but far cheaper than) testing
        ``len(all_runs[r].clip(lo, hi))`` per (rank, window) pair.
        """
        _aggs, _ts, lows, highs, _base = self._flat_windows
        member = np.zeros((len(self.all_runs), lows.size), dtype=bool)
        if lows.size:
            for r, rl in enumerate(self.all_runs):
                if not len(rl):
                    continue
                ends = rl.offsets + rl.lengths
                first = np.searchsorted(ends, lows, side="right")
                last = np.searchsorted(rl.offsets, highs, side="left")
                member[r] = last > first
        return member

    def rank_in_window(self, rank: int, agg_idx: int, t: int) -> bool:
        """Whether ``rank`` has requested bytes in window ``t`` of
        aggregator ``agg_idx``."""
        return bool(self.membership[rank, self.flat_index(agg_idx, t)])

    def window_ranks(self, agg_idx: int, t: int) -> List[int]:
        """Ranks (ascending) with requested bytes in one window."""
        col = self.membership[:, self.flat_index(agg_idx, t)]
        return [int(r) for r in np.flatnonzero(col)]

    def window_pieces(self, rank: int, agg_idx: int, t: int) -> RunList:
        """``all_runs[rank]`` clipped to window ``t`` of aggregator
        ``agg_idx``, memoized per plan — the traditional shuffle, the
        collective-computing map loop and the write path all clip the
        same (rank, window) pairs against the same immutable run lists."""
        cache = self.__dict__.setdefault("_window_pieces", {})
        key = (rank, agg_idx, t)
        pieces = cache.get(key)
        if pieces is None:
            lo, hi = self.windows[agg_idx][t]
            pieces = cache[key] = self.all_runs[rank].clip(lo, hi)
        return pieces

    def read_span(self, agg_idx: int, t: int) -> Tuple[int, int]:
        """Tight ``[first, last)`` byte span of requested data inside
        window ``t`` of aggregator ``agg_idx`` — what one collective
        buffer read must fetch.  Memoized per plan (windows are trimmed,
        so the span always exists)."""
        cache = self.__dict__.setdefault("_read_spans", {})
        key = (agg_idx, t)
        span = cache.get(key)
        if span is None:
            lo, hi = self.windows[agg_idx][t]
            span = cache[key] = self.global_runs.clip(lo, hi).extent()
        return span

    @cached_property
    def rank_agg_matrix(self) -> np.ndarray:
        """``bool[nranks, naggs]`` — does rank ``r`` request bytes in
        *any* window of aggregator ``i``?  The two-level CC staging
        flow table: aggregator ``i`` produces a partial for ``r`` iff
        this is true, so every leader derives which nodes exchange
        staged batches without any extra communication."""
        _aggs, _ts, _lo, _hi, base = self._flat_windows
        mat = np.zeros((len(self.all_runs), len(self.aggregators)),
                       dtype=bool)
        for i in range(len(self.aggregators)):
            nw = len(self.windows[i])
            if nw:
                mat[:, i] = self.membership[:, base[i]:base[i] + nw].any(
                    axis=1)
        return mat

    def receiver_schedule(self, rank: int) -> List[Tuple[int, int]]:
        """``(t, aggregator_rank)`` pairs for every window holding data
        of ``rank``, ordered by iteration then aggregator position — the
        deterministic order the two-phase receiver loop posts receives
        in."""
        aggs, ts, _lo, _hi, _base = self._flat_windows
        mine = np.flatnonzero(self.membership[rank])
        if not mine.size:
            return []
        order = np.lexsort((aggs[mine], ts[mine]))
        sel = mine[order]
        return [(int(ts[w]), self.aggregators[int(aggs[w])]) for w in sel]

    def shifted(self, delta: int) -> "TwoPhasePlan":
        """The plan for a byte-translated access: every run list, domain
        and window moved by ``delta`` bytes.  Aggregator assignment is
        unchanged, and the receiver schedule — invariant under a rigid
        translation — is carried over instead of being rebuilt."""
        new = TwoPhasePlan(
            all_runs=[rl.shift(delta) for rl in self.all_runs],
            aggregators=list(self.aggregators),
            domains=[(lo + delta, hi + delta) for lo, hi in self.domains],
            windows=[[(lo + delta, hi + delta) for lo, hi in ws]
                     for ws in self.windows],
        )
        if "membership" in self.__dict__:
            new.__dict__["membership"] = self.__dict__["membership"]
        if "global_runs" in self.__dict__:
            new.__dict__["global_runs"] = self.global_runs.shift(delta)
        return new

    def validate(self) -> None:
        """Check the schedule invariants every consumer relies on.

        * windows are sorted, non-overlapping, non-empty per aggregator;
        * every requested byte falls inside exactly one window;
        * no window holds bytes nobody requested beyond its bounds.

        Raises :class:`~repro.errors.IOLayerError` on violation.  Used
        by tests and by the fault-tolerance plan surgery.
        """
        global_runs = self.global_runs
        covered = 0
        all_windows: List[Tuple[int, int]] = []
        for i, windows in enumerate(self.windows):
            prev_hi = None
            for (lo, hi) in windows:
                if hi <= lo:
                    raise IOLayerError(
                        f"aggregator {i}: empty window ({lo}, {hi})")
                if prev_hi is not None and lo < prev_hi:
                    raise IOLayerError(
                        f"aggregator {i}: windows overlap or unsorted")
                prev_hi = hi
                inside = global_runs.clip(lo, hi)
                if not len(inside):
                    raise IOLayerError(
                        f"aggregator {i}: window ({lo}, {hi}) holds no data")
                covered += inside.total_bytes
                all_windows.append((lo, hi))
        all_windows.sort()
        for (a_lo, a_hi), (b_lo, b_hi) in zip(all_windows, all_windows[1:]):
            if b_lo < a_hi:
                raise IOLayerError(
                    f"windows ({a_lo},{a_hi}) and ({b_lo},{b_hi}) overlap "
                    f"across aggregators")
        if covered != global_runs.total_bytes:
            raise IOLayerError(
                f"windows cover {covered} of {global_runs.total_bytes} "
                f"requested bytes")


#: Process-wide switch for the per-communicator plan-derivation memo.
#: The memo never skips the (simulated) offset-list exchange — it only
#: avoids re-deriving the identical schedule on every rank — so event
#: order and simulated timings are unaffected.  Disable to A/B-test.
PLAN_CACHE_ENABLED = True

#: Memoized plan derivations a communicator may hold before the least
#: recently used is evicted.
PLAN_CACHE_CAPACITY = 32

_PLAN_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _plan_cache_for(comm) -> "OrderedDict":
    """The plan memo of one communicator (job scope: it dies with the
    communicator, and machine topology / rank count are fixed within
    it, so they need not appear in cache keys)."""
    cache = _PLAN_CACHES.get(comm)
    if cache is None:
        cache = OrderedDict()
        _PLAN_CACHES[comm] = cache
    return cache


def _same_runs(a: List[RunList], b: List[RunList]) -> bool:
    """Exact equality check guarding against signature collisions.  The
    common case is object identity: within one collective call the
    allgather hands every rank references to the same RunList objects."""
    return all(
        x is y or (np.array_equal(x.offsets, y.offsets)
                   and np.array_equal(x.lengths, y.lengths))
        for x, y in zip(a, b)
    )


def derive_plan(machine, nprocs: int, all_runs: List[RunList],
                file: PFSFile, hints: CollectiveHints,
                grid: Optional[Tuple[int, int]] = None) -> TwoPhasePlan:
    """Pure (communication-free) plan derivation from the allgathered
    run lists — the work :func:`make_plan` memoizes."""
    global_runs = merge_runlists(all_runs)
    ext = global_runs.extent()
    aggregators = select_aggregators(machine, nprocs,
                                     hints.aggregators_per_node)
    if ext is None:
        return TwoPhasePlan(all_runs, aggregators,
                            [(0, 0)] * len(aggregators),
                            [[] for _ in aggregators])
    stripe = file.layout.stripe_size if hints.align_to_stripes else None
    domains = partition_file_domains(ext, len(aggregators), stripe, grid)
    windows = [
        iteration_windows(dom, global_runs, hints.cb_buffer_size, grid)
        for dom in domains
    ]
    plan = TwoPhasePlan(all_runs, aggregators, domains, windows)
    plan.__dict__["global_runs"] = global_runs
    if checks_enabled():
        from ..check.plan import check_plan_deep
        check_plan_deep(plan)
    return plan


def _offset_exchange(ctx: RankContext, my_runs: RunList,
                     hints: CollectiveHints) -> Generator:
    """The offset-list exchange: every rank ends up with every rank's
    run list, world-rank indexed.

    One-level (the default) is ROMIO's flat allgather.  With
    ``hints.two_level`` the lists are staged through one leader per
    node: gather onto the leader over the intra-node communicator, an
    allgather among leaders only, then an intra-node broadcast — so
    only per-node message *aggregates* cross the network instead of
    P×(P−1) individual lists.  Both paths return identical data.
    """
    if not hints.two_level or ctx.size == 1:
        all_runs: List[RunList] = yield from coll.allgather(ctx.comm, my_runs)
        return all_runs
    ns = yield from ctx.comm.node_split()
    node_lists = yield from coll.gather(ns.node_comm, my_runs, root=0)
    merged: Optional[List[RunList]] = None
    if ns.leader_comm is not None:
        per_node = yield from coll.allgather(
            ns.leader_comm, (tuple(ns.node_ranks), tuple(node_lists)))
        merged = [None] * ctx.size  # type: ignore[list-item]
        for ranks, lists in per_node:
            for r, rl in zip(ranks, lists):
                merged[r] = rl
    all_runs = yield from coll.bcast(ns.node_comm, merged, root=0)
    return all_runs


def make_plan(ctx: RankContext, my_runs: RunList, file: PFSFile,
              hints: CollectiveHints,
              grid: Optional[Tuple[int, int]] = None) -> Generator:
    """Exchange offset lists and derive the (identical-everywhere)
    two-phase schedule.  Collective: all ranks must call it.

    ``grid`` (``(base, step)``) aligns domain and window boundaries to
    an element grid — required by collective computing, where the map
    must see whole elements (plain byte-level I/O leaves it ``None``).

    The offset exchange is always simulated; the *derivation* of the
    schedule from the exchanged lists is memoized per communicator (all
    ranks derive the identical plan from the identical inputs, and
    experiment loops repeat identical requests), keyed by the run-list
    signatures, hints, grid and stripe alignment.
    """
    all_runs: List[RunList] = yield from _offset_exchange(ctx, my_runs, hints)
    if not PLAN_CACHE_ENABLED:
        return derive_plan(ctx.machine, ctx.size, all_runs, file, hints, grid)
    stripe = file.layout.stripe_size if hints.align_to_stripes else None
    cache = _plan_cache_for(ctx.comm.comm)
    key = (tuple(rl.signature() for rl in all_runs), hints, grid, stripe)
    hit = cache.get(key)
    if hit is not None:
        cached_runs, plan = hit
        if _same_runs(cached_runs, all_runs):
            cache.move_to_end(key)
            return plan
    plan = derive_plan(ctx.machine, ctx.size, all_runs, file, hints, grid)
    cache[key] = (all_runs, plan)
    while len(cache) > PLAN_CACHE_CAPACITY:
        cache.popitem(last=False)
    return plan


def _extract_pieces(window_data: np.ndarray, window_lo: int,
                    pieces: RunList) -> List[Tuple[int, np.ndarray]]:
    """Slice per-rank pieces out of an aggregator's window buffer."""
    out = []
    for off, n in pieces:
        lo = off - window_lo
        out.append((off, window_data[lo:lo + n]))
    return out


def _aggregator_read_loop(ctx: RankContext, file: PFSFile,
                          plan: TwoPhasePlan, agg_idx: int, base_tag: int,
                          hints: CollectiveHints,
                          timeline: Optional[PhaseTimeline],
                          ns: Optional[NodeSplit] = None) -> Generator:
    """The aggregator side of a collective read: read windows, shuffle
    pieces to their requesting ranks.

    One-level (``ns=None``): one message per requesting rank per window,
    tagged ``base_tag + t``.  Two-level: the per-rank payloads of one
    window are batched per destination *node* and sent to that node's
    leader, tagged ``base_tag + flat_index`` (flat-window tags keep
    every (source, tag) pair unique once leaders multiplex traffic).
    """
    my_windows = plan.windows[agg_idx]
    kernel = ctx.kernel
    comm = ctx.comm.comm
    checking = checks_enabled()

    def issue_read(t: int):
        r_lo, r_hi = plan.read_span(agg_idx, t)  # windows never empty
        return r_lo, kernel.process(
            ctx.fs.read(file, r_lo, r_hi - r_lo, client=ctx.node.index),
            name=f"cbread:r{ctx.rank}@{r_lo}",
        )

    pending = issue_read(0) if my_windows else None
    for t, (w_lo, w_hi) in enumerate(my_windows):
        read_lo, read_proc = pending
        t0 = kernel.now
        data = yield from ctx.wait_recording(read_proc, "wait")
        if timeline is not None:
            timeline.record(ctx.rank, t, "read", t0, kernel.now)
        if hints.pipeline and t + 1 < len(my_windows):
            pending = issue_read(t + 1)
        window_data = np.frombuffer(data, dtype=np.uint8)
        t1 = kernel.now
        sends = []
        copy_bytes = 0
        if ns is None:
            for r in plan.window_ranks(agg_idx, t):
                pieces = plan.window_pieces(r, agg_idx, t)
                payload = _extract_pieces(window_data, read_lo, pieces)
                nb = pieces.total_bytes
                copy_bytes += nb
                # Closed form of wire_size(payload) for a list of
                # (int offset, array piece) pairs — skips the walk.
                nbytes = 16 + 24 * len(pieces) + nb
                if checking and nbytes != wire_size(payload):
                    raise IOLayerError(
                        f"shuffle wire-size accounting drifted: closed form "
                        f"{nbytes} != measured {wire_size(payload)} for "
                        f"rank {r}, window {t} of aggregator {agg_idx}")
                _record_shuffle(comm, ctx.rank, r, nbytes, payload)
                sends.append(ctx.comm.isend(payload, r, base_tag + t,
                                            nbytes=nbytes))
        else:
            tag = base_tag + plan.flat_index(agg_idx, t)
            by_node: Dict[int, List[Tuple[int, list]]] = {}
            closed: Dict[int, int] = {}
            for r in plan.window_ranks(agg_idx, t):
                pieces = plan.window_pieces(r, agg_idx, t)
                payload = _extract_pieces(window_data, read_lo, pieces)
                nb = pieces.total_bytes
                copy_bytes += nb
                node = comm.node_of(r)
                by_node.setdefault(node, []).append((r, payload))
                # Closed form of one (rank, payload) batch entry: a
                # 2-tuple (16) + the int rank (8) + the payload list.
                closed[node] = (closed.get(node, 0)
                                + 40 + 24 * len(pieces) + nb)
            for node in sorted(by_node):
                batch = by_node[node]
                nbytes = 16 + closed[node]
                if checking and nbytes != wire_size(batch):
                    raise IOLayerError(
                        f"two-level shuffle wire-size accounting drifted: "
                        f"closed form {nbytes} != measured "
                        f"{wire_size(batch)} for node {node}, window {t} "
                        f"of aggregator {agg_idx}")
                leader = comm.node_leader(node)
                _record_shuffle(comm, ctx.rank, leader, nbytes, batch)
                sends.append(ctx.comm.isend(batch, leader, tag,
                                            nbytes=nbytes))
        yield from ctx.memcpy(copy_bytes)
        for req in sends:
            yield from ctx.wait_recording(req.event, "wait")
        if timeline is not None:
            timeline.record(ctx.rank, t, "shuffle", t1, kernel.now)
        if not hints.pipeline and t + 1 < len(my_windows):
            pending = issue_read(t + 1)
    return None


def _unpack_pieces(placer: RunPlacer, buf: np.ndarray, pieces) -> int:
    """Unpack one shuffle payload into the packed local buffer; returns
    the byte count.  One payload carries the receiver's runs clipped to
    a contiguous file window, and the packed buffer is in file order —
    so the pieces land in a single contiguous span of the buffer."""
    if not pieces:
        return 0
    first_off, first_piece = pieces[0]
    (start, _fo, _n), = placer.place(first_off, len(first_piece))
    pos = start
    for _off, piece in pieces:
        n = len(piece)
        buf[pos:pos + n] = piece
        pos += n
    return pos - start


def _receiver_loop(ctx: RankContext, plan: TwoPhasePlan, my_runs: RunList,
                   base_tag: int, ns: Optional[NodeSplit] = None) -> Generator:
    """The receiver side: collect pieces, unpack into the packed local
    buffer.  Returns the buffer.

    One-level: one message per (window, aggregator) pair, straight from
    the aggregator.  Two-level members receive the same payloads from
    their node leader (at flat-window tags); two-level leaders run the
    relay in :func:`_leader_read_relay`, peeling their own payloads out
    of the per-node batches they forward.
    """
    placer = RunPlacer(my_runs)
    buf = np.empty(placer.total_bytes, dtype=np.uint8)
    if ns is not None and ns.is_leader:
        yield from _leader_read_relay(ctx, plan, ns, base_tag, placer, buf)
        return buf
    # Deterministic schedule: which aggregator sends to me at iteration
    # t — precomputed once per plan from the membership table.
    for t, agg_rank in plan.receiver_schedule(ctx.rank):
        if ns is None:
            req = ctx.comm.irecv(agg_rank, base_tag + t)
        else:
            w = plan.flat_index(plan.aggregator_index(agg_rank), t)
            req = ctx.comm.irecv(ns.leader, base_tag + w)
        msg = yield from ctx.wait_recording(req.event, "wait")
        nbytes = _unpack_pieces(placer, buf, msg.data)
        yield from ctx.memcpy(nbytes)
    return buf


def _leader_read_relay(ctx: RankContext, plan: TwoPhasePlan, ns: NodeSplit,
                       base_tag: int, placer: RunPlacer,
                       buf: np.ndarray) -> Generator:
    """The node leader's side of a two-level read shuffle: receive each
    per-node batch, keep this rank's own payload, forward the rest to
    the requesting co-located ranks (an intra-node hop)."""
    comm = ctx.comm.comm
    checking = checks_enabled()
    node_any = plan.membership[ns.node_ranks].any(axis=0)
    for i, agg_rank in enumerate(plan.aggregators):
        for t in range(len(plan.windows[i])):
            w = plan.flat_index(i, t)
            if not node_any[w]:
                continue
            tag = base_tag + w
            req = ctx.comm.irecv(agg_rank, tag)
            msg = yield from ctx.wait_recording(req.event, "wait")
            forwards = []
            for r, payload in msg.data:
                if r == ctx.rank:
                    nbytes = _unpack_pieces(placer, buf, payload)
                    yield from ctx.memcpy(nbytes)
                    continue
                nb = sum(len(piece) for _off, piece in payload)
                nbytes = 16 + 24 * len(payload) + nb
                if checking and nbytes != wire_size(payload):
                    raise IOLayerError(
                        f"two-level forward wire-size accounting drifted: "
                        f"closed form {nbytes} != measured "
                        f"{wire_size(payload)} for rank {r}, window {t} "
                        f"of aggregator {i}")
                _record_shuffle(comm, ctx.rank, r, nbytes, payload)
                forwards.append(ctx.comm.isend(payload, r, tag,
                                               nbytes=nbytes))
            for fwd in forwards:
                yield from ctx.wait_recording(fwd.event, "wait")
    return None


def collective_read(ctx: RankContext, file: PFSFile, request: AccessRequest,
                    hints: Optional[CollectiveHints] = None,
                    timeline: Optional[PhaseTimeline] = None,
                    plan: Optional[TwoPhasePlan] = None) -> Generator:
    """Two-phase collective read of ``request``.

    Collective over the whole communicator.  Returns this rank's packed
    ``uint8`` buffer (convert with :meth:`AccessRequest.as_array`).

    ``plan`` short-circuits the offset exchange with a pre-computed
    schedule (see :class:`repro.core.plan_cache.PlanMemo`); the caller
    is responsible for its consistency across ranks.
    """
    hints = hints or CollectiveHints()
    if plan is None:
        plan = yield from make_plan(ctx, request.runs, file, hints)
    ns, base_tag = yield from _shuffle_setup(ctx, plan, hints)
    agg_idx = plan.aggregator_index(ctx.rank)
    procs = []
    if agg_idx is not None and plan.windows[agg_idx]:
        procs.append(ctx.kernel.process(
            _aggregator_read_loop(ctx, file, plan, agg_idx, base_tag,
                                  hints, timeline, ns),
            name=f"agg:r{ctx.rank}",
        ))
    recv_proc = ctx.kernel.process(
        _receiver_loop(ctx, plan, request.runs, base_tag, ns),
        name=f"recv:r{ctx.rank}",
    )
    procs.append(recv_proc)
    yield ctx.kernel.all_of(procs)
    return recv_proc.value


def _shuffle_setup(ctx: RankContext, plan: TwoPhasePlan,
                   hints: CollectiveHints) -> Generator:
    """Common two-phase shuffle preamble: resolve the (cached) node
    split when two-level mode is on, sanitize the two-level schedule
    under ``REPRO_CHECK``, and reserve the shuffle tag block —
    ``ntimes`` tags one-level, one tag per flat window two-level (leader
    multiplexing needs unique (source, tag) pairs per window)."""
    ns: Optional[NodeSplit] = None
    if hints.two_level and ctx.size > 1:
        ns = yield from ctx.comm.node_split()
        if checks_enabled():
            from ..check.plan import check_two_level_schedule
            check_two_level_schedule(plan, ctx.comm.comm.node_of)
        n_tags = sum(len(ws) for ws in plan.windows)
    else:
        n_tags = plan.ntimes
    base_tag = ctx.comm.next_collective_tags(max(n_tags, 1))
    return ns, base_tag


def collective_write(ctx: RankContext, file: PFSFile, request: AccessRequest,
                     data: np.ndarray,
                     hints: Optional[CollectiveHints] = None,
                     timeline: Optional[PhaseTimeline] = None) -> Generator:
    """Two-phase collective write: ranks shuffle their pieces to the
    aggregators, which assemble windows and write them out.

    ``data`` is the rank's packed element buffer matching ``request``.
    Unlike ROMIO we write the (coalesced) requested runs instead of
    read-modify-writing whole windows; with non-overlapping requests the
    result is identical and the simulated cost slightly optimistic for
    hole-ridden writes.
    """
    hints = hints or CollectiveHints()
    flat = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    if flat.nbytes != request.nbytes:
        raise IOLayerError(
            f"data has {flat.nbytes} bytes, request wants {request.nbytes}"
        )
    plan = yield from make_plan(ctx, request.runs, file, hints)
    ns, base_tag = yield from _shuffle_setup(ctx, plan, hints)
    agg_idx = plan.aggregator_index(ctx.rank)
    procs = [ctx.kernel.process(
        _writer_send_loop(ctx, plan, request.runs, flat, base_tag, ns),
        name=f"wsend:r{ctx.rank}",
    )]
    if agg_idx is not None and plan.windows[agg_idx]:
        procs.append(ctx.kernel.process(
            _aggregator_write_loop(ctx, file, plan, agg_idx, base_tag,
                                   timeline, ns),
            name=f"wagg:r{ctx.rank}",
        ))
    yield ctx.kernel.all_of(procs)
    return None


def _build_write_payload(plan: TwoPhasePlan, placer: RunPlacer,
                         flat: np.ndarray, rank: int, agg_idx: int,
                         t: int) -> Tuple[list, int]:
    """One rank's write-shuffle payload for one window: ``(offset,
    piece)`` pairs sliced out of the packed buffer, plus the data byte
    count."""
    pieces = plan.window_pieces(rank, agg_idx, t)
    payload = []
    nbytes = 0
    for off, n in pieces:
        local, _fo, _cov = placer.place(off, n)[0]
        payload.append((off, flat[local:local + n]))
        nbytes += n
    return payload, nbytes


def _writer_send_loop(ctx: RankContext, plan: TwoPhasePlan, my_runs: RunList,
                      flat: np.ndarray, base_tag: int,
                      ns: Optional[NodeSplit] = None) -> Generator:
    """Send my pieces of each (aggregator, iteration) window.

    One-level: straight to the aggregator, tagged ``base_tag + t``.
    Two-level members send the identical payloads to their node leader
    (flat-window tags); two-level leaders instead run
    :func:`_leader_write_relay`, which folds their own payloads into
    the per-node batches.
    """
    placer = RunPlacer(my_runs)
    checking = checks_enabled()
    comm = ctx.comm.comm
    if ns is not None and ns.is_leader:
        yield from _leader_write_relay(ctx, plan, ns, placer, flat, base_tag)
        return None
    for i, agg_rank in enumerate(plan.aggregators):
        for t, (w_lo, w_hi) in enumerate(plan.windows[i]):
            if not plan.rank_in_window(ctx.rank, i, t):
                continue
            payload, nbytes = _build_write_payload(plan, placer, flat,
                                                   ctx.rank, i, t)
            yield from ctx.memcpy(nbytes)
            wire = 16 + 24 * len(payload) + nbytes
            if checking and wire != wire_size(payload):
                raise IOLayerError(
                    f"write shuffle wire-size accounting drifted: closed "
                    f"form {wire} != measured {wire_size(payload)} for "
                    f"window {t} of aggregator {i}")
            if ns is None:
                dest, tag = agg_rank, base_tag + t
            else:
                dest, tag = ns.leader, base_tag + plan.flat_index(i, t)
            _record_shuffle(comm, ctx.rank, dest, wire, payload)
            yield from ctx.comm.send(payload, dest, tag, nbytes=wire)
    return None


def _leader_write_relay(ctx: RankContext, plan: TwoPhasePlan, ns: NodeSplit,
                        placer: RunPlacer, flat: np.ndarray,
                        base_tag: int) -> Generator:
    """The node leader's side of a two-level write shuffle: collect the
    co-located ranks' payloads for each window (building its own
    in-place), batch them per window and send one message per
    (window, node) to the aggregator."""
    comm = ctx.comm.comm
    checking = checks_enabled()
    member = plan.membership
    for i, agg_rank in enumerate(plan.aggregators):
        for t in range(len(plan.windows[i])):
            w = plan.flat_index(i, t)
            senders = [r for r in ns.node_ranks if member[r, w]]
            if not senders:
                continue
            batch = []
            closed = 0
            for r in senders:
                if r == ctx.rank:
                    payload, nb = _build_write_payload(plan, placer, flat,
                                                       r, i, t)
                    yield from ctx.memcpy(nb)
                else:
                    payload = yield from ctx.comm.recv(r, base_tag + w)
                    nb = sum(len(piece) for _off, piece in payload)
                batch.append((r, payload))
                closed += 40 + 24 * len(payload) + nb
            nbytes = 16 + closed
            if checking and nbytes != wire_size(batch):
                raise IOLayerError(
                    f"two-level write batch wire-size accounting drifted: "
                    f"closed form {nbytes} != measured {wire_size(batch)} "
                    f"for node {ns.node_index}, window {t} of "
                    f"aggregator {i}")
            _record_shuffle(comm, ctx.rank, agg_rank, nbytes, batch)
            yield from ctx.comm.send(batch, agg_rank, base_tag + w,
                                     nbytes=nbytes)
    return None


def _aggregator_write_loop(ctx: RankContext, file: PFSFile,
                           plan: TwoPhasePlan, agg_idx: int, base_tag: int,
                           timeline: Optional[PhaseTimeline],
                           ns: Optional[NodeSplit] = None) -> Generator:
    """Receive pieces for each window, assemble, write coalesced runs.

    Two-level mode receives one batch per sending *node* (from its
    leader) instead of one message per sending rank; the assembled
    window bytes are identical either way.
    """
    global_runs = plan.global_runs_strict
    kernel = ctx.kernel
    comm = ctx.comm.comm
    for t, (w_lo, w_hi) in enumerate(plan.windows[agg_idx]):
        needed = global_runs.clip(w_lo, w_hi)
        r_lo, r_hi = needed.extent()
        window = np.zeros(r_hi - r_lo, dtype=np.uint8)
        senders = plan.window_ranks(agg_idx, t)
        t0 = kernel.now
        if ns is None:
            for r in senders:
                req = ctx.comm.irecv(r, base_tag + t)
                msg = yield from ctx.wait_recording(req.event, "wait")
                nbytes = 0
                for off, piece in msg.data:
                    window[off - r_lo:off - r_lo + len(piece)] = piece
                    nbytes += len(piece)
                yield from ctx.memcpy(nbytes)
        else:
            tag = base_tag + plan.flat_index(agg_idx, t)
            for node in sorted({comm.node_of(r) for r in senders}):
                req = ctx.comm.irecv(comm.node_leader(node), tag)
                msg = yield from ctx.wait_recording(req.event, "wait")
                nbytes = 0
                for _r, payload in msg.data:
                    for off, piece in payload:
                        window[off - r_lo:off - r_lo + len(piece)] = piece
                        nbytes += len(piece)
                yield from ctx.memcpy(nbytes)
        if timeline is not None:
            timeline.record(ctx.rank, t, "shuffle", t0, kernel.now)
        t1 = kernel.now
        writes = []
        for off, n in needed:
            writes.append(kernel.process(
                ctx.fs.write(file, off,
                             window[off - r_lo:off - r_lo + n].tobytes(),
                             client=ctx.node.index),
                name=f"cbwrite:r{ctx.rank}@{off}",
            ))
        yield from ctx.wait_recording(kernel.all_of(writes), "wait")
        if timeline is not None:
            timeline.record(ctx.rank, t, "write", t1, kernel.now)
    return None
