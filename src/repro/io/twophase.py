"""Two-phase collective I/O (the ROMIO protocol the paper modifies).

Collective read, step by step (write is the mirror image):

1. **Offset-list exchange** — every rank flattens its request and the
   run lists are allgathered (ROMIO's ``ADIOI_Calc_others_req``),
   charged on the network by their real metadata size.
2. **File domains** — the combined extent is split evenly (optionally
   stripe-aligned) across the aggregator ranks.
3. **Iterations** — each aggregator sweeps the requested part of its
   domain in collective-buffer-size windows.  Per window it issues one
   contiguous PFS read (first to last needed byte) and then *shuffles*:
   sends every rank the pieces of that rank's request found in the
   window.  With ``hints.pipeline`` the next window's read is posted
   before the current shuffle — the nonblocking two-phase variant whose
   profile is the paper's Figure 1.
4. Receivers unpack arriving pieces into their packed local buffer.

The protocol moves *real* bytes; the result is numerically identical to
an independent read of the same request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..dataspace import RunList, merge_runlists
from ..errors import IOLayerError
from ..mpi import RankContext, collectives as coll
from ..pfs import PFSFile
from ..profiling import PhaseTimeline
from .aggregation import (iteration_windows, partition_file_domains,
                          select_aggregators)
from .hints import CollectiveHints
from .requests import AccessRequest, RunPlacer


@dataclass(frozen=True)
class TwoPhasePlan:
    """The deterministic schedule every rank derives after the offset
    exchange: aggregators, their file domains, and per-aggregator
    iteration windows."""

    all_runs: List[RunList]
    aggregators: List[int]
    domains: List[Tuple[int, int]]
    windows: List[List[Tuple[int, int]]]

    @property
    def ntimes(self) -> int:
        """Global iteration count (max over aggregators)."""
        return max((len(w) for w in self.windows), default=0)

    def aggregator_index(self, rank: int) -> Optional[int]:
        """Position of ``rank`` in the aggregator list, or None."""
        try:
            return self.aggregators.index(rank)
        except ValueError:
            return None

    def validate(self) -> None:
        """Check the schedule invariants every consumer relies on.

        * windows are sorted, non-overlapping, non-empty per aggregator;
        * every requested byte falls inside exactly one window;
        * no window holds bytes nobody requested beyond its bounds.

        Raises :class:`~repro.errors.IOLayerError` on violation.  Used
        by tests and by the fault-tolerance plan surgery.
        """
        global_runs = merge_runlists(self.all_runs)
        covered = 0
        all_windows: List[Tuple[int, int]] = []
        for i, windows in enumerate(self.windows):
            prev_hi = None
            for (lo, hi) in windows:
                if hi <= lo:
                    raise IOLayerError(
                        f"aggregator {i}: empty window ({lo}, {hi})")
                if prev_hi is not None and lo < prev_hi:
                    raise IOLayerError(
                        f"aggregator {i}: windows overlap or unsorted")
                prev_hi = hi
                inside = global_runs.clip(lo, hi)
                if not len(inside):
                    raise IOLayerError(
                        f"aggregator {i}: window ({lo}, {hi}) holds no data")
                covered += inside.total_bytes
                all_windows.append((lo, hi))
        all_windows.sort()
        for (a_lo, a_hi), (b_lo, b_hi) in zip(all_windows, all_windows[1:]):
            if b_lo < a_hi:
                raise IOLayerError(
                    f"windows ({a_lo},{a_hi}) and ({b_lo},{b_hi}) overlap "
                    f"across aggregators")
        if covered != global_runs.total_bytes:
            raise IOLayerError(
                f"windows cover {covered} of {global_runs.total_bytes} "
                f"requested bytes")


def make_plan(ctx: RankContext, my_runs: RunList, file: PFSFile,
              hints: CollectiveHints,
              grid: Optional[Tuple[int, int]] = None) -> Generator:
    """Exchange offset lists and derive the (identical-everywhere)
    two-phase schedule.  Collective: all ranks must call it.

    ``grid`` (``(base, step)``) aligns domain and window boundaries to
    an element grid — required by collective computing, where the map
    must see whole elements (plain byte-level I/O leaves it ``None``).
    """
    all_runs: List[RunList] = yield from coll.allgather(ctx.comm, my_runs)
    global_runs = merge_runlists(all_runs)
    ext = global_runs.extent()
    aggregators = select_aggregators(ctx.machine, ctx.size,
                                     hints.aggregators_per_node)
    if ext is None:
        return TwoPhasePlan(all_runs, aggregators,
                            [(0, 0)] * len(aggregators),
                            [[] for _ in aggregators])
    stripe = file.layout.stripe_size if hints.align_to_stripes else None
    domains = partition_file_domains(ext, len(aggregators), stripe, grid)
    windows = [
        iteration_windows(dom, global_runs, hints.cb_buffer_size, grid)
        for dom in domains
    ]
    return TwoPhasePlan(all_runs, aggregators, domains, windows)


def _extract_pieces(window_data: np.ndarray, window_lo: int,
                    pieces: RunList) -> List[Tuple[int, np.ndarray]]:
    """Slice per-rank pieces out of an aggregator's window buffer."""
    out = []
    for off, n in pieces:
        lo = off - window_lo
        out.append((off, window_data[lo:lo + n]))
    return out


def _aggregator_read_loop(ctx: RankContext, file: PFSFile,
                          plan: TwoPhasePlan, agg_idx: int, base_tag: int,
                          hints: CollectiveHints,
                          timeline: Optional[PhaseTimeline]) -> Generator:
    """The aggregator side of a collective read: read windows, shuffle
    pieces to their requesting ranks."""
    my_windows = plan.windows[agg_idx]
    global_runs = merge_runlists(plan.all_runs)
    kernel = ctx.kernel

    def issue_read(window: Tuple[int, int]):
        w_lo, w_hi = window
        needed = global_runs.clip(w_lo, w_hi)
        r_lo, r_hi = needed.extent()  # windows are trimmed, never empty
        return r_lo, kernel.process(
            ctx.fs.read(file, r_lo, r_hi - r_lo, client=ctx.node.index),
            name=f"cbread:r{ctx.rank}@{r_lo}",
        )

    pending = issue_read(my_windows[0]) if my_windows else None
    for t, (w_lo, w_hi) in enumerate(my_windows):
        read_lo, read_proc = pending
        t0 = kernel.now
        data = yield from ctx.wait_recording(read_proc, "wait")
        if timeline is not None:
            timeline.record(ctx.rank, t, "read", t0, kernel.now)
        if hints.pipeline and t + 1 < len(my_windows):
            pending = issue_read(my_windows[t + 1])
        window_data = np.frombuffer(data, dtype=np.uint8)
        t1 = kernel.now
        sends = []
        copy_bytes = 0
        for r in range(ctx.size):
            pieces = plan.all_runs[r].clip(w_lo, w_hi)
            if not len(pieces):
                continue
            payload = _extract_pieces(window_data, read_lo, pieces)
            copy_bytes += pieces.total_bytes
            sends.append(ctx.comm.isend(payload, r, base_tag + t))
        yield from ctx.memcpy(copy_bytes)
        for req in sends:
            yield from ctx.wait_recording(req.event, "wait")
        if timeline is not None:
            timeline.record(ctx.rank, t, "shuffle", t1, kernel.now)
        if not hints.pipeline and t + 1 < len(my_windows):
            pending = issue_read(my_windows[t + 1])
    return None


def _receiver_loop(ctx: RankContext, plan: TwoPhasePlan, my_runs: RunList,
                   base_tag: int) -> Generator:
    """The receiver side: collect pieces from aggregators, unpack into
    the packed local buffer.  Returns the buffer."""
    placer = RunPlacer(my_runs)
    buf = np.empty(placer.total_bytes, dtype=np.uint8)
    # Deterministic schedule: which aggregator sends to me at iteration t.
    expected: Dict[int, List[int]] = {}
    for i, agg_rank in enumerate(plan.aggregators):
        for t, (w_lo, w_hi) in enumerate(plan.windows[i]):
            if len(my_runs.clip(w_lo, w_hi)):
                expected.setdefault(t, []).append(agg_rank)
    for t in sorted(expected):
        for agg_rank in expected[t]:
            req = ctx.comm.irecv(agg_rank, base_tag + t)
            msg = yield from ctx.wait_recording(req.event, "wait")
            pieces = msg.data
            nbytes = 0
            for off, piece in pieces:
                for local, _fo, n in placer.place(off, len(piece)):
                    buf[local:local + n] = piece[:n]
                nbytes += len(piece)
            yield from ctx.memcpy(nbytes)
    return buf


def collective_read(ctx: RankContext, file: PFSFile, request: AccessRequest,
                    hints: Optional[CollectiveHints] = None,
                    timeline: Optional[PhaseTimeline] = None) -> Generator:
    """Two-phase collective read of ``request``.

    Collective over the whole communicator.  Returns this rank's packed
    ``uint8`` buffer (convert with :meth:`AccessRequest.as_array`).
    """
    hints = hints or CollectiveHints()
    plan = yield from make_plan(ctx, request.runs, file, hints)
    ntimes = plan.ntimes
    base_tag = ctx.comm.next_collective_tags(max(ntimes, 1))
    agg_idx = plan.aggregator_index(ctx.rank)
    procs = []
    if agg_idx is not None and plan.windows[agg_idx]:
        procs.append(ctx.kernel.process(
            _aggregator_read_loop(ctx, file, plan, agg_idx, base_tag,
                                  hints, timeline),
            name=f"agg:r{ctx.rank}",
        ))
    recv_proc = ctx.kernel.process(
        _receiver_loop(ctx, plan, request.runs, base_tag),
        name=f"recv:r{ctx.rank}",
    )
    procs.append(recv_proc)
    yield ctx.kernel.all_of(procs)
    return recv_proc.value


def collective_write(ctx: RankContext, file: PFSFile, request: AccessRequest,
                     data: np.ndarray,
                     hints: Optional[CollectiveHints] = None,
                     timeline: Optional[PhaseTimeline] = None) -> Generator:
    """Two-phase collective write: ranks shuffle their pieces to the
    aggregators, which assemble windows and write them out.

    ``data`` is the rank's packed element buffer matching ``request``.
    Unlike ROMIO we write the (coalesced) requested runs instead of
    read-modify-writing whole windows; with non-overlapping requests the
    result is identical and the simulated cost slightly optimistic for
    hole-ridden writes.
    """
    hints = hints or CollectiveHints()
    flat = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    if flat.nbytes != request.nbytes:
        raise IOLayerError(
            f"data has {flat.nbytes} bytes, request wants {request.nbytes}"
        )
    plan = yield from make_plan(ctx, request.runs, file, hints)
    ntimes = plan.ntimes
    base_tag = ctx.comm.next_collective_tags(max(ntimes, 1))
    agg_idx = plan.aggregator_index(ctx.rank)
    procs = [ctx.kernel.process(
        _writer_send_loop(ctx, plan, request.runs, flat, base_tag),
        name=f"wsend:r{ctx.rank}",
    )]
    if agg_idx is not None and plan.windows[agg_idx]:
        procs.append(ctx.kernel.process(
            _aggregator_write_loop(ctx, file, plan, agg_idx, base_tag,
                                   timeline),
            name=f"wagg:r{ctx.rank}",
        ))
    yield ctx.kernel.all_of(procs)
    return None


def _writer_send_loop(ctx: RankContext, plan: TwoPhasePlan, my_runs: RunList,
                      flat: np.ndarray, base_tag: int) -> Generator:
    """Send my pieces of each (aggregator, iteration) window."""
    placer = RunPlacer(my_runs)
    for i, agg_rank in enumerate(plan.aggregators):
        for t, (w_lo, w_hi) in enumerate(plan.windows[i]):
            pieces = my_runs.clip(w_lo, w_hi)
            if not len(pieces):
                continue
            payload = []
            nbytes = 0
            for off, n in pieces:
                local, _fo, cov = placer.place(off, n)[0]
                payload.append((off, flat[local:local + n]))
                nbytes += n
            yield from ctx.memcpy(nbytes)
            yield from ctx.comm.send(payload, agg_rank, base_tag + t)
    return None


def _aggregator_write_loop(ctx: RankContext, file: PFSFile,
                           plan: TwoPhasePlan, agg_idx: int, base_tag: int,
                           timeline: Optional[PhaseTimeline]) -> Generator:
    """Receive pieces for each window, assemble, write coalesced runs."""
    global_runs = merge_runlists(plan.all_runs, allow_overlap=False)
    kernel = ctx.kernel
    for t, (w_lo, w_hi) in enumerate(plan.windows[agg_idx]):
        needed = global_runs.clip(w_lo, w_hi)
        r_lo, r_hi = needed.extent()
        window = np.zeros(r_hi - r_lo, dtype=np.uint8)
        senders = [
            r for r in range(ctx.size)
            if len(plan.all_runs[r].clip(w_lo, w_hi))
        ]
        t0 = kernel.now
        for r in senders:
            req = ctx.comm.irecv(r, base_tag + t)
            msg = yield from ctx.wait_recording(req.event, "wait")
            nbytes = 0
            for off, piece in msg.data:
                window[off - r_lo:off - r_lo + len(piece)] = piece
                nbytes += len(piece)
            yield from ctx.memcpy(nbytes)
        if timeline is not None:
            timeline.record(ctx.rank, t, "shuffle", t0, kernel.now)
        t1 = kernel.now
        writes = []
        for off, n in needed:
            writes.append(kernel.process(
                ctx.fs.write(file, off,
                             window[off - r_lo:off - r_lo + n].tobytes(),
                             client=ctx.node.index),
                name=f"cbwrite:r{ctx.rank}@{off}",
            ))
        yield from ctx.wait_recording(kernel.all_of(writes), "wait")
        if timeline is not None:
            timeline.record(ctx.rank, t, "write", t1, kernel.now)
    return None
