"""Nonblocking collective I/O (NB-CIO) — the related work of §V-A.

``icollective_read`` starts a whole two-phase collective read in the
background and returns a request; the caller overlaps *other* work and
waits later.  This is the coarse-grained overlap the paper contrasts
with collective computing: computation can only run on **independent**
data while the read is in flight, never on the bytes being read — so
it cannot shrink the shuffle, only hide compute that doesn't need the
incoming data.

The ablation benchmark ``bench_ablation`` compares CC against exactly
this baseline.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..mpi import RankContext, Request
from ..pfs import PFSFile
from ..profiling import PhaseTimeline
from .hints import CollectiveHints
from .requests import AccessRequest
from .twophase import collective_read


def icollective_read(ctx: RankContext, file: PFSFile, request: AccessRequest,
                     hints: Optional[CollectiveHints] = None,
                     timeline: Optional[PhaseTimeline] = None) -> Request:
    """Start a nonblocking two-phase collective read.

    Every rank must call this at the same point in its program (it
    consumes the communicator's collective sequence numbers exactly as
    the blocking call would).  The returned request's value is the
    packed ``uint8`` buffer.

    .. warning::
       As with MPI's ``MPI_File_iread_all``, the rank must not start
       another collective on the same communicator until this one is
       waited on, or the collective tag streams interleave.
    """
    proc = ctx.kernel.process(
        collective_read(ctx, file, request, hints, timeline),
        name=f"nbcio:r{ctx.rank}",
    )
    return Request(proc)


def wait_and_unpack(ctx: RankContext, req: Request,
                    request: AccessRequest) -> Generator:
    """Wait for an :func:`icollective_read` and view the result as the
    request's element type (recorded as I/O wait time)."""
    buf = yield from ctx.wait_recording(req.event, "wait")
    return request.as_array(buf)
